//! Runtime substrate: a virtual machine standing in for the ART runtime,
//! plus device environments, installed packages, event drivers, and
//! telemetry.
//!
//! The paper evaluates BombDroid by *running* protected apps — on user
//! emulators with varied configurations (Table 3), under fuzzers for an
//! hour at a time (Table 4, Fig. 5), and side-by-side with the original
//! for overhead measurement (Table 5). This crate supplies all of that
//! machinery:
//!
//! * [`Vm`] — a register-machine interpreter over `bombdroid-dex` bytecode
//!   with a deterministic instruction→milliseconds cost model, framework
//!   shims (`getPublicKey`, manifest digests, resources, env/sensor/time
//!   queries, response actions), salted hashing, and authenticated
//!   decrypt-and-execute with fragment caching.
//! * [`DeviceEnv`] — user-population device sampling vs. the attacker's
//!   handful of emulator images (observation D1 of the paper).
//! * [`InstalledPackage`] — the system-managed snapshot of certificate,
//!   manifest digests, and per-class code digests taken at install.
//! * [`driver`] — user-style and random event sources and session driving
//!   (observation D2: users collectively reach almost every part of an
//!   app; a blind driver does not).
//! * [`Telemetry`] — invocation counts (Traceview analogue), satisfied
//!   trigger conditions, triggered bombs, responses, field-value profiles.
//!
//! # Example
//!
//! ```
//! use bombdroid_apk::{package_app, AppMeta, DeveloperKey, StringsXml};
//! use bombdroid_dex::{Class, DexFile, MethodBuilder};
//! use bombdroid_runtime::{DeviceEnv, InstalledPackage, Vm};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut dex = DexFile::new();
//! let mut class = Class::new("Main");
//! let mut b = MethodBuilder::new("Main", "main", 0);
//! b.host_log("hello world");
//! b.ret_void();
//! class.methods.push(b.finish());
//! dex.classes.push(class);
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let dev = DeveloperKey::generate(&mut rng);
//! let apk = package_app(&dex, StringsXml::new(), AppMeta::named("hello"), &dev);
//! let pkg = InstalledPackage::install(&apk).unwrap();
//! let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 7);
//! let outcome = vm.fire_method(&bombdroid_dex::MethodRef::new("Main", "main"), vec![]);
//! assert!(outcome.completed());
//! assert_eq!(vm.telemetry().logs, vec!["\"hello world\"".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
pub mod driver;
pub mod env;
mod exec;
pub mod package;
pub mod snapshot;
pub mod telemetry;
pub mod value;
pub mod vm;

pub use driver::{
    param_favorites, run_session, EventInvocation, EventSource, RandomEventSource, SessionReport,
    UserEventSource,
};
pub use env::{
    DeviceEnv, DeviceProfile, EnvValue, WeightedTable, COUNTRIES, CPU_ABIS, DENSITIES, FLASH_GB,
    LANGUAGES, MANUFACTURERS, SDK_LEVELS,
};
pub use package::InstalledPackage;
pub use snapshot::{SessionPool, VmSnapshot};
pub use telemetry::{ResponseEvent, ResponseKind, Telemetry};
pub use value::RtValue;
pub use vm::{AttackerHooks, CovEdge, EventOutcome, Fault, Vm, VmEngine, VmOptions};
