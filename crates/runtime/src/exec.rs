//! The two dispatch loops: the pre-decoded engine (default) and the
//! legacy tree-walking interpreter it must stay bit-identical to.
//!
//! Every decoded op — including the fused superinstructions — replays the
//! exact micro-op sequence of the legacy arm(s) it replaces: the same
//! `charge` calls in the same order, the same fault precedence, the same
//! telemetry writes keyed on original instruction indices. The
//! telemetry-identity mode of `tests/behavior_preservation.rs` holds both
//! loops to that contract.

use crate::decode::{ArithRhs, DecodedBody, DecodedOp, DecodedProgram, DecodedRhs};
use crate::value::RtValue;
use crate::vm::{Fault, Flow, Vm};
use bombdroid_crypto::kdf;
use bombdroid_dex::{BlobId, CondOp, Instr, MethodRef, RegOrConst, UnOp};
use std::collections::BTreeMap;
use std::sync::Arc;

impl Vm {
    /// Calls a resolved method on the decoded engine. The caller has
    /// already depth-checked and resolved `id`.
    pub(crate) fn call_decoded(
        &mut self,
        prog: &Arc<DecodedProgram>,
        id: usize,
        args: Vec<RtValue>,
        depth: usize,
    ) -> Result<RtValue, Fault> {
        let entry = prog.entry(id);
        if args.len() != entry.params as usize {
            return Err(Fault::BadEvent(format!(
                "{}: expected {} args, got {}",
                entry.mref,
                entry.params,
                args.len()
            )));
        }
        let mref = entry.mref.clone();
        let registers = entry.registers as usize;
        // Per-call accounting goes to a flat id-indexed delta table; the
        // event boundary folds it into `telemetry.method_calls` (one map
        // entry per *distinct* method instead of per call — see
        // `Vm::fold_call_deltas`).
        if self.call_deltas.len() <= id {
            self.call_deltas.resize(id + 1, 0);
        }
        if self.call_deltas[id] == 0 {
            self.called_ids.push(id as u32);
        }
        self.call_deltas[id] += 1;
        self.op_mix.decode_body_fetches += 1;
        let body = Arc::clone(prog.body(&self.pkg, id));
        let mut regs = vec![RtValue::Null; body.frame.max(registers).max(args.len())];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a;
        }
        self.charge(5)?;
        match self.exec_decoded(prog, &body, &mut regs, &mref, depth, id as u32)? {
            Flow::Returned(v) => Ok(v),
            Flow::Done => Ok(RtValue::Null),
        }
    }

    /// Shared compare+telemetry tail of every conditional branch (plain or
    /// fused): operands were fetched by the caller *after* any fused write,
    /// preserving aliasing semantics. Does not charge.
    fn cond_branch(
        &mut self,
        a: RtValue,
        b: RtValue,
        rhs_is_const: bool,
        cond: CondOp,
        src_pc: usize,
        mref: &MethodRef,
    ) -> Result<bool, Fault> {
        let taken = Self::compare(cond, &a, &b)?;
        // QC-coverage telemetry: an equality on a constant that held.
        // (`Eq` taken, or `Ne` fall-through.)
        let eq_held = match cond {
            CondOp::Eq => taken,
            CondOp::Ne => !taken,
            _ => false,
        };
        if eq_held && rhs_is_const {
            self.telemetry.eq_satisfied.insert((mref.clone(), src_pc));
            if matches!(a, RtValue::Bytes(_)) {
                self.telemetry
                    .outer_satisfied
                    .insert((mref.clone(), src_pc));
            }
        }
        Ok(taken)
    }

    #[inline]
    fn fetch_rhs(regs: &[RtValue], rhs: &DecodedRhs) -> (RtValue, bool) {
        match rhs {
            DecodedRhs::Slot(s) => (regs[*s].clone(), false),
            DecodedRhs::Const(v) => (v.clone(), true),
        }
    }

    /// The decoded dispatch loop. `regs` is grown to the body's frame size
    /// on entry (fragments execute in their caller's frame), so every slot
    /// index is in-bounds and reads of never-written slots yield `Null`
    /// exactly like the legacy engine's out-of-range register reads.
    ///
    /// `cov_unit` names the body for coverage edges: the flat decoded
    /// method id for method bodies, `0x8000_0000 | blob id` for decrypted
    /// fragments (whose decoded pcs restart at zero). Only the control-flow
    /// arms record edges, and only when [`crate::VmOptions::collect_coverage`]
    /// is on; coverage never charges, so the cost model is unaffected.
    pub(crate) fn exec_decoded(
        &mut self,
        prog: &Arc<DecodedProgram>,
        body: &DecodedBody,
        regs: &mut Vec<RtValue>,
        mref: &MethodRef,
        depth: usize,
        cov_unit: u32,
    ) -> Result<Flow, Fault> {
        if regs.len() < body.frame {
            regs.resize(body.frame, RtValue::Null);
        }
        let ops = &body.ops[..];
        let mut pc = 0usize;
        while let Some(op) = ops.get(pc) {
            let mut next = pc + 1;
            match op {
                DecodedOp::Const { dst, value } => {
                    self.charge(1)?;
                    regs[*dst] = value.clone();
                }
                DecodedOp::Move { dst, src } => {
                    self.charge(1)?;
                    regs[*dst] = regs[*src].clone();
                }
                DecodedOp::BinOp { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = regs[*lhs]
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    let b = regs[*rhs]
                        .as_int()
                        .ok_or(Fault::TypeError("binop rhs not int"))?;
                    regs[*dst] = RtValue::Int(Self::arith(*op, a, b)?);
                }
                DecodedOp::BinOpConst { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = regs[*lhs]
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    regs[*dst] = RtValue::Int(Self::arith(*op, a, *rhs)?);
                }
                DecodedOp::UnOp { op, dst, src } => {
                    self.charge(1)?;
                    let a = regs[*src]
                        .as_int()
                        .ok_or(Fault::TypeError("unop operand not int"))?;
                    let v = match op {
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::Not => !a,
                        UnOp::Abs => a.wrapping_abs(),
                    };
                    regs[*dst] = RtValue::Int(v);
                }
                DecodedOp::StrOp { op, dst, lhs, rhs } => {
                    self.charge(2)?;
                    let a = regs[*lhs].clone();
                    let rhs_val = rhs.map(|r| regs[r].clone());
                    let v = self.str_op_vals(*op, a, rhs_val)?;
                    regs[*dst] = v;
                }
                DecodedOp::If {
                    cond,
                    lhs,
                    rhs,
                    target,
                    pc: src_pc,
                } => {
                    self.charge(1)?;
                    let a = regs[*lhs].clone();
                    let (b, is_const) = Self::fetch_rhs(regs, rhs);
                    if self.cond_branch(a, b, is_const, *cond, *src_pc as usize, mref)? {
                        next = *target;
                    }
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::Switch { src, arms, default } => {
                    self.charge(1)?;
                    let v = regs[*src]
                        .as_int()
                        .ok_or(Fault::TypeError("switch operand not int"))?;
                    next = arms
                        .iter()
                        .find(|(case, _)| *case == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::Goto { target } => {
                    self.charge(1)?;
                    next = *target;
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::Invoke {
                    target,
                    mref: callee,
                    args,
                    dst,
                } => {
                    let argv: Vec<RtValue> = args.iter().map(|&r| regs[r].clone()).collect();
                    let ret = match target {
                        Some(id) => {
                            if depth + 1 >= self.opts.max_call_depth {
                                return Err(Fault::StackOverflow);
                            }
                            self.call_decoded(prog, *id as usize, argv, depth + 1)?
                        }
                        None => {
                            // The legacy engine depth-checks before
                            // resolving: a too-deep call to a missing
                            // method is a StackOverflow.
                            if depth + 1 >= self.opts.max_call_depth {
                                return Err(Fault::StackOverflow);
                            }
                            return Err(Fault::UnknownMethod(callee.clone()));
                        }
                    };
                    if let Some(d) = dst {
                        regs[*d] = ret;
                    }
                }
                DecodedOp::InvokeReflect { name, args, dst } => {
                    self.charge(10)?;
                    let target = regs[*name]
                        .as_str()
                        .ok_or(Fault::TypeError("reflect name not string"))?
                        .to_string();
                    if self.opts.hooks.trace_reflection {
                        let at = self.clock_ms;
                        self.telemetry.reflection_trace.push((target.clone(), at));
                    }
                    let argv: Vec<RtValue> = args.iter().map(|&r| regs[r].clone()).collect();
                    let ret = self.reflect_call(&target, &argv)?;
                    if let Some(d) = dst {
                        regs[*d] = ret;
                    }
                }
                DecodedOp::HostCall { api, args, dst } => {
                    self.charge(10)?;
                    let argv: Vec<RtValue> = args.iter().map(|&r| regs[r].clone()).collect();
                    let ret = self.host_call(api, &argv)?;
                    if let Some(d) = dst {
                        regs[*d] = ret;
                    }
                }
                DecodedOp::GetField { dst, obj, name } => {
                    self.charge(1)?;
                    let v = match &regs[*obj] {
                        RtValue::Obj(id) => self
                            .objects
                            .get(*id)
                            .and_then(|o| o.get(name).cloned())
                            .unwrap_or(RtValue::Null),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iget on non-object")),
                    };
                    regs[*dst] = v;
                }
                DecodedOp::PutField {
                    obj,
                    src,
                    name,
                    display,
                } => {
                    self.charge(1)?;
                    let v = regs[*src].clone();
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field_ref(display, at, c);
                        }
                    }
                    match &regs[*obj] {
                        RtValue::Obj(id) => {
                            let id = *id;
                            let o = Arc::make_mut(&mut self.objects)
                                .get_mut(id)
                                .ok_or(Fault::TypeError("dangling object"))?;
                            o.insert(name.clone(), v);
                        }
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iput on non-object")),
                    }
                }
                DecodedOp::GetStatic { dst, key } => {
                    self.charge(1)?;
                    // Unwritten statics read as 0, matching Java's default
                    // initialization of numeric static fields.
                    let v = self.statics.get(&**key).cloned().unwrap_or(RtValue::Int(0));
                    regs[*dst] = v;
                }
                DecodedOp::PutStatic { src, key } => {
                    self.charge(1)?;
                    let v = regs[*src].clone();
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field_ref(key, at, c);
                        }
                    }
                    let statics = Arc::make_mut(&mut self.statics);
                    match statics.get_mut(&**key) {
                        Some(slot) => *slot = v,
                        None => {
                            statics.insert(key.to_string(), v);
                        }
                    }
                }
                DecodedOp::NewInstance { dst } => {
                    self.charge(2)?;
                    let objects = Arc::make_mut(&mut self.objects);
                    let id = objects.len();
                    objects.push(BTreeMap::new());
                    regs[*dst] = RtValue::Obj(id);
                }
                DecodedOp::NewArray { dst, len } => {
                    self.charge(2)?;
                    let n = regs[*len]
                        .as_int()
                        .ok_or(Fault::TypeError("array length not int"))?;
                    if !(0..=1_000_000).contains(&n) {
                        return Err(Fault::IndexOutOfBounds);
                    }
                    let arrays = Arc::make_mut(&mut self.arrays);
                    let id = arrays.len();
                    arrays.push(vec![RtValue::Int(0); n as usize]);
                    regs[*dst] = RtValue::Arr(id);
                }
                DecodedOp::ArrayGet { dst, arr, idx } => {
                    self.charge(1)?;
                    let arr_val = regs[*arr].clone();
                    let idx_val = regs[*idx].clone();
                    let v = self.array_slot_vals(&arr_val, &idx_val)?.clone();
                    regs[*dst] = v;
                }
                DecodedOp::ArrayPut { arr, idx, src } => {
                    self.charge(1)?;
                    let v = regs[*src].clone();
                    let arr_val = regs[*arr].clone();
                    let idx_val = regs[*idx].clone();
                    *self.array_slot_vals(&arr_val, &idx_val)? = v;
                }
                DecodedOp::ArrayLen { dst, arr } => {
                    self.charge(1)?;
                    let n = match &regs[*arr] {
                        RtValue::Arr(id) => self
                            .arrays
                            .get(*id)
                            .ok_or(Fault::TypeError("dangling array"))?
                            .len(),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("array-length on non-array")),
                    };
                    regs[*dst] = RtValue::Int(n as i64);
                }
                DecodedOp::Hash { dst, src, salt } => {
                    // Hashing ≤ 16 input bytes is a handful of SHA-1
                    // compressions — cheap next to interpreter dispatch.
                    self.charge(4)?;
                    let cb = regs[*src]
                        .canonical_bytes()
                        .ok_or(Fault::TypeError("hash of reference value"))?;
                    let digest = kdf::condition_hash(&cb, salt);
                    regs[*dst] = RtValue::Bytes(Arc::from(&digest[..]));
                }
                DecodedOp::DecryptExec { blob, key_src } => {
                    let key_val = regs[*key_src].clone();
                    let fragment = self.fragment_for(BlobId(*blob), key_val)?;
                    let fbody = Arc::clone(fragment.decoded_body(&self.pkg, prog));
                    // Fragment pcs restart at zero; tag their coverage unit
                    // with the blob id so they never alias method edges.
                    let funit = 0x8000_0000 | *blob;
                    if let Flow::Returned(v) =
                        self.exec_decoded(prog, &fbody, regs, mref, depth, funit)?
                    {
                        return Ok(Flow::Returned(v));
                    }
                }
                DecodedOp::StegoExtract { dst, src } => {
                    self.charge(5)?;
                    let v = match regs[*src].as_str() {
                        Some(cover) => match bombdroid_apk::stego::extract(cover) {
                            Some(bytes) => RtValue::Bytes(Arc::from(bytes.as_slice())),
                            None => RtValue::Null,
                        },
                        None => RtValue::Null,
                    };
                    regs[*dst] = v;
                }
                DecodedOp::Return { src } => {
                    self.charge(1)?;
                    let v = src.map(|r| regs[r].clone()).unwrap_or(RtValue::Null);
                    return Ok(Flow::Returned(v));
                }
                DecodedOp::Throw { msg } => {
                    self.charge(1)?;
                    return Err(Fault::Thrown(msg.to_string()));
                }
                DecodedOp::Nop => {
                    self.charge(1)?;
                }
                DecodedOp::HashIf {
                    dst,
                    src,
                    salt,
                    cond,
                    rhs,
                    target,
                    pc: src_pc,
                } => {
                    self.op_mix.hash_if += 1;
                    // Hash micro-op.
                    self.charge(4)?;
                    let cb = regs[*src]
                        .canonical_bytes()
                        .ok_or(Fault::TypeError("hash of reference value"))?;
                    let digest = kdf::condition_hash(&cb, salt);
                    regs[*dst] = RtValue::Bytes(Arc::from(&digest[..]));
                    // If micro-op on the written result.
                    self.charge(1)?;
                    let a = regs[*dst].clone();
                    if self.cond_branch(a, rhs.clone(), true, *cond, *src_pc as usize, mref)? {
                        next = *target;
                    }
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::BinOpConstIf {
                    op,
                    dst,
                    lhs,
                    rhs,
                    cond,
                    cmp,
                    target,
                    pc: src_pc,
                } => {
                    self.op_mix.binop_const_if += 1;
                    self.charge(1)?;
                    let a = regs[*lhs]
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    regs[*dst] = RtValue::Int(Self::arith(*op, a, *rhs)?);
                    self.charge(1)?;
                    let a = regs[*dst].clone();
                    let (b, is_const) = Self::fetch_rhs(regs, cmp);
                    if self.cond_branch(a, b, is_const, *cond, *src_pc as usize, mref)? {
                        next = *target;
                    }
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::ConstIf {
                    dst,
                    value,
                    cond,
                    rhs,
                    target,
                    pc: src_pc,
                } => {
                    self.op_mix.const_if += 1;
                    self.charge(1)?;
                    regs[*dst] = value.clone();
                    self.charge(1)?;
                    let a = regs[*dst].clone();
                    let (b, is_const) = Self::fetch_rhs(regs, rhs);
                    if self.cond_branch(a, b, is_const, *cond, *src_pc as usize, mref)? {
                        next = *target;
                    }
                    self.cov_edge(cov_unit, pc as u32, next as u32);
                }
                DecodedOp::ArithChain { steps } => {
                    self.op_mix.arith_chain += 1;
                    // Each step replays its legacy micro-ops exactly:
                    // charge, lhs read, rhs read, compute, write — so fuel
                    // exhaustion and type/div faults land mid-chain at the
                    // same instruction they would on the tree-walker.
                    for step in steps.iter() {
                        self.charge(1)?;
                        let a = regs[step.lhs]
                            .as_int()
                            .ok_or(Fault::TypeError("binop lhs not int"))?;
                        let b = match step.rhs {
                            ArithRhs::Slot(s) => regs[s]
                                .as_int()
                                .ok_or(Fault::TypeError("binop rhs not int"))?,
                            ArithRhs::Const(c) => c,
                        };
                        regs[step.dst] = RtValue::Int(Self::arith(step.op, a, b)?);
                    }
                }
                DecodedOp::ConstArrayGet {
                    idx_dst,
                    idx_val,
                    dst,
                    arr,
                } => {
                    self.op_mix.const_array_get += 1;
                    self.charge(1)?;
                    regs[*idx_dst] = RtValue::Int(*idx_val);
                    self.charge(1)?;
                    // Fetch after the index write: `arr` may alias it.
                    let arr_val = regs[*arr].clone();
                    let iv = regs[*idx_dst].clone();
                    let v = self.array_slot_vals(&arr_val, &iv)?.clone();
                    regs[*dst] = v;
                }
            }
            pc = next;
        }
        Ok(Flow::Done)
    }

    /// The legacy tree-walking interpreter over `dex::Instr`, byte-for-byte
    /// the pre-decode semantics. Selected via `BOMBDROID_VM=legacy` (or
    /// `VmEngine::Legacy`); also runs detached fragments, which are
    /// attacker-side one-shots not worth pre-decoding.
    pub(crate) fn exec_body(
        &mut self,
        mref: &MethodRef,
        body: &[Instr],
        regs: &mut Vec<RtValue>,
        depth: usize,
    ) -> Result<Flow, Fault> {
        let mut pc = 0usize;
        while pc < body.len() {
            let instr = &body[pc];
            let mut next = pc + 1;
            match instr {
                Instr::Const { dst, value } => {
                    self.charge(1)?;
                    Self::set_reg(regs, *dst, value.clone().into());
                }
                Instr::Move { dst, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    Self::set_reg(regs, *dst, v);
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *lhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    let b = self
                        .reg(regs, *rhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop rhs not int"))?;
                    Self::set_reg(regs, *dst, RtValue::Int(Self::arith(*op, a, b)?));
                }
                Instr::BinOpConst { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *lhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    Self::set_reg(regs, *dst, RtValue::Int(Self::arith(*op, a, *rhs)?));
                }
                Instr::UnOp { op, dst, src } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *src)
                        .as_int()
                        .ok_or(Fault::TypeError("unop operand not int"))?;
                    let v = match op {
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::Not => !a,
                        UnOp::Abs => a.wrapping_abs(),
                    };
                    Self::set_reg(regs, *dst, RtValue::Int(v));
                }
                Instr::StrOp { op, dst, lhs, rhs } => {
                    self.charge(2)?;
                    let a = self.reg(regs, *lhs);
                    let rhs_val = rhs.map(|r| self.reg(regs, r));
                    let v = self.str_op_vals(*op, a, rhs_val)?;
                    Self::set_reg(regs, *dst, v);
                }
                Instr::If {
                    cond,
                    lhs,
                    rhs,
                    target,
                } => {
                    self.charge(1)?;
                    let a = self.reg(regs, *lhs);
                    let (b, is_const) = match rhs {
                        RegOrConst::Reg(r) => (self.reg(regs, *r), false),
                        RegOrConst::Const(v) => (v.clone().into(), true),
                    };
                    if self.cond_branch(a, b, is_const, *cond, pc, mref)? {
                        next = *target;
                    }
                }
                Instr::Switch { src, arms, default } => {
                    self.charge(1)?;
                    let v = self
                        .reg(regs, *src)
                        .as_int()
                        .ok_or(Fault::TypeError("switch operand not int"))?;
                    next = arms
                        .iter()
                        .find(|(case, _)| *case == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                }
                Instr::Goto { target } => {
                    self.charge(1)?;
                    next = *target;
                }
                Instr::Invoke { method, args, dst } => {
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.call(method, argv, depth + 1)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::InvokeReflect { name, args, dst } => {
                    self.charge(10)?;
                    let target = self
                        .reg(regs, *name)
                        .as_str()
                        .ok_or(Fault::TypeError("reflect name not string"))?
                        .to_string();
                    if self.opts.hooks.trace_reflection {
                        let at = self.clock_ms;
                        self.telemetry.reflection_trace.push((target.clone(), at));
                    }
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.reflect_call(&target, &argv)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::HostCall { api, args, dst } => {
                    self.charge(10)?;
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.host_call(api, &argv)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::GetField { dst, obj, field } => {
                    self.charge(1)?;
                    let v = match self.reg(regs, *obj) {
                        RtValue::Obj(id) => self
                            .objects
                            .get(id)
                            .and_then(|o| o.get(&field.name).cloned())
                            .unwrap_or(RtValue::Null),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iget on non-object")),
                    };
                    Self::set_reg(regs, *dst, v);
                }
                Instr::PutField { obj, field, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field(field.to_string(), at, c);
                        }
                    }
                    match self.reg(regs, *obj) {
                        RtValue::Obj(id) => {
                            let o = Arc::make_mut(&mut self.objects)
                                .get_mut(id)
                                .ok_or(Fault::TypeError("dangling object"))?;
                            o.insert(field.name.clone(), v);
                        }
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iput on non-object")),
                    }
                }
                Instr::GetStatic { dst, field } => {
                    self.charge(1)?;
                    // Unwritten statics read as 0, matching Java's default
                    // initialization of numeric static fields.
                    let v = self
                        .statics
                        .get(&field.to_string())
                        .cloned()
                        .unwrap_or(RtValue::Int(0));
                    Self::set_reg(regs, *dst, v);
                }
                Instr::PutStatic { field, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field(field.to_string(), at, c);
                        }
                    }
                    Arc::make_mut(&mut self.statics).insert(field.to_string(), v);
                }
                Instr::NewInstance { dst, class: _ } => {
                    self.charge(2)?;
                    let objects = Arc::make_mut(&mut self.objects);
                    let id = objects.len();
                    objects.push(BTreeMap::new());
                    Self::set_reg(regs, *dst, RtValue::Obj(id));
                }
                Instr::NewArray { dst, len } => {
                    self.charge(2)?;
                    let n = self
                        .reg(regs, *len)
                        .as_int()
                        .ok_or(Fault::TypeError("array length not int"))?;
                    if !(0..=1_000_000).contains(&n) {
                        return Err(Fault::IndexOutOfBounds);
                    }
                    let arrays = Arc::make_mut(&mut self.arrays);
                    let id = arrays.len();
                    arrays.push(vec![RtValue::Int(0); n as usize]);
                    Self::set_reg(regs, *dst, RtValue::Arr(id));
                }
                Instr::ArrayGet { dst, arr, idx } => {
                    self.charge(1)?;
                    let arr_val = self.reg(regs, *arr);
                    let idx_val = self.reg(regs, *idx);
                    let v = self.array_slot_vals(&arr_val, &idx_val)?.clone();
                    Self::set_reg(regs, *dst, v);
                }
                Instr::ArrayPut { arr, idx, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    let arr_val = self.reg(regs, *arr);
                    let idx_val = self.reg(regs, *idx);
                    *self.array_slot_vals(&arr_val, &idx_val)? = v;
                }
                Instr::ArrayLen { dst, arr } => {
                    self.charge(1)?;
                    let n = match self.reg(regs, *arr) {
                        RtValue::Arr(id) => self
                            .arrays
                            .get(id)
                            .ok_or(Fault::TypeError("dangling array"))?
                            .len(),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("array-length on non-array")),
                    };
                    Self::set_reg(regs, *dst, RtValue::Int(n as i64));
                }
                Instr::Hash { dst, src, salt } => {
                    // Hashing ≤ 16 input bytes is a handful of SHA-1
                    // compressions — cheap next to interpreter dispatch.
                    self.charge(4)?;
                    let cb = self
                        .reg(regs, *src)
                        .canonical_bytes()
                        .ok_or(Fault::TypeError("hash of reference value"))?;
                    let digest = kdf::condition_hash(&cb, salt);
                    Self::set_reg(regs, *dst, RtValue::Bytes(Arc::from(&digest[..])));
                }
                Instr::DecryptExec { blob, key_src } => {
                    let key_val = self.reg(regs, *key_src);
                    let fragment = self.fragment_for(*blob, key_val)?;
                    let raw = Arc::clone(&fragment.raw);
                    if let Flow::Returned(v) = self.exec_body(mref, &raw, regs, depth)? {
                        return Ok(Flow::Returned(v));
                    }
                }
                Instr::StegoExtract { dst, src } => {
                    self.charge(5)?;
                    let v = match self.reg(regs, *src).as_str() {
                        Some(cover) => match bombdroid_apk::stego::extract(cover) {
                            Some(bytes) => RtValue::Bytes(Arc::from(bytes.as_slice())),
                            None => RtValue::Null,
                        },
                        None => RtValue::Null,
                    };
                    Self::set_reg(regs, *dst, v);
                }
                Instr::Return { src } => {
                    self.charge(1)?;
                    let v = src.map(|r| self.reg(regs, r)).unwrap_or(RtValue::Null);
                    return Ok(Flow::Returned(v));
                }
                Instr::Throw { msg } => {
                    self.charge(1)?;
                    return Err(Fault::Thrown(msg.clone()));
                }
                Instr::Nop => {
                    self.charge(1)?;
                }
            }
            pc = next;
        }
        Ok(Flow::Done)
    }
}
