//! Event generation and session driving.
//!
//! Two populations exercise an app (paper §1, observation D1/D2):
//!
//! * **Users** ([`UserEventSource`]) play the app purposefully: they favour
//!   high-weight entry points and *salient* input values — menu choices,
//!   meaningful commands, habitual quantities. [`param_favorites`] derives
//!   those salient values deterministically from the entry point identity,
//!   and the corpus generator picks qualified-condition constants from the
//!   same set, which is exactly why real users keep satisfying the app's
//!   own branch conditions while random fuzzing rarely does.
//! * **Random drivers** ([`RandomEventSource`]) model Monkey-style blackbox
//!   input: uniform entry choice, uniform draws from the full parameter
//!   domain. (The smarter fuzzers of the paper's Table 4 live in
//!   `bombdroid-attacks` and build on this.)

use crate::value::RtValue;
use crate::vm::Vm;
use bombdroid_crypto::sha1;
use bombdroid_dex::{DexFile, ParamDomain, Value};
use rand::{rngs::StdRng, Rng};
use std::sync::Arc;

/// One event to fire: entry-point index plus arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct EventInvocation {
    /// Index into the DEX file's entry-point table.
    pub entry_index: usize,
    /// Arguments matching the entry point's parameter domains.
    pub args: Vec<RtValue>,
}

/// A stream of events aimed at an app.
pub trait EventSource {
    /// Produces the next event, or `None` when the source is exhausted.
    fn next_event(&mut self, dex: &DexFile, rng: &mut StdRng) -> Option<EventInvocation>;
}

/// Number of salient values derived per parameter.
pub const FAVORITE_COUNT: usize = 6;

/// Derives the salient ("user favourite") values of a parameter. Stable
/// across processes: keyed by the entry-point event name and parameter
/// index, so the corpus generator and the user driver agree without
/// sharing state.
pub fn param_favorites(domain: &ParamDomain, event: &str, param_index: usize) -> Vec<Value> {
    match domain {
        ParamDomain::Choice(vs) => vs.clone(),
        ParamDomain::IntRange(lo, hi) => {
            let span = (hi - lo).max(1) as u128;
            let mut out = vec![Value::Int(*lo), Value::Int(*hi)];
            for k in 0..FAVORITE_COUNT {
                let d = sha1::digest(format!("fav|{event}|{param_index}|{k}").as_bytes());
                let x = d[..8]
                    .iter()
                    .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
                    as u128;
                out.push(Value::Int(lo + (x % span) as i64));
            }
            out
        }
        ParamDomain::Text { .. } => (0..FAVORITE_COUNT)
            .map(|k| {
                let d = sha1::digest(format!("favtext|{event}|{param_index}|{k}").as_bytes());
                Value::str(syllable_word(&d[..4]))
            })
            .collect(),
    }
}

/// Renders bytes as a pronounceable lowercase word (used for favourite
/// text inputs — "commands users actually type").
fn syllable_word(bytes: &[u8]) -> String {
    const SYL: [&str; 16] = [
        "an", "be", "co", "du", "el", "fi", "go", "hu", "in", "jo", "ka", "li", "mo", "nu", "or",
        "pa",
    ];
    let mut s = String::new();
    for b in bytes {
        s.push_str(SYL[(b >> 4) as usize]);
        s.push_str(SYL[(b & 0xf) as usize]);
    }
    s
}

/// Draws uniformly from a parameter domain (fuzzer behaviour).
pub fn uniform_arg(domain: &ParamDomain, rng: &mut StdRng) -> RtValue {
    match domain {
        ParamDomain::IntRange(lo, hi) => RtValue::Int(rng.gen_range(*lo..=*hi)),
        ParamDomain::Choice(vs) => vs[rng.gen_range(0..vs.len())].clone().into(),
        ParamDomain::Text { max_len } => {
            let len = rng.gen_range(0..=*max_len as usize);
            let s: String = (0..len)
                .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                .collect();
            RtValue::Str(Arc::from(s))
        }
    }
}

/// Draws a user-style argument: salient values most of the time, the full
/// domain occasionally.
pub fn user_arg(
    domain: &ParamDomain,
    event: &str,
    param_index: usize,
    rng: &mut StdRng,
) -> RtValue {
    if rng.gen_bool(0.75) {
        let favs = param_favorites(domain, event, param_index);
        if !favs.is_empty() {
            return favs[rng.gen_range(0..favs.len())].clone().into();
        }
    }
    uniform_arg(domain, rng)
}

/// Uniform random events over all entry points — the raw-input baseline.
#[derive(Debug, Clone, Default)]
pub struct RandomEventSource;

impl EventSource for RandomEventSource {
    fn next_event(&mut self, dex: &DexFile, rng: &mut StdRng) -> Option<EventInvocation> {
        if dex.entry_points.is_empty() {
            return None;
        }
        let entry_index = rng.gen_range(0..dex.entry_points.len());
        let ep = &dex.entry_points[entry_index];
        let args = ep.params.iter().map(|d| uniform_arg(d, rng)).collect();
        Some(EventInvocation { entry_index, args })
    }
}

/// User-style sessions: entry points weighted by `user_weight`, arguments
/// drawn from favourites.
#[derive(Debug, Clone, Default)]
pub struct UserEventSource;

impl EventSource for UserEventSource {
    fn next_event(&mut self, dex: &DexFile, rng: &mut StdRng) -> Option<EventInvocation> {
        if dex.entry_points.is_empty() {
            return None;
        }
        let total: f64 = dex
            .entry_points
            .iter()
            .map(|e| e.user_weight.max(0.0))
            .sum();
        let entry_index = if total <= 0.0 {
            rng.gen_range(0..dex.entry_points.len())
        } else {
            let mut roll = rng.gen_range(0.0..total);
            let mut chosen = dex.entry_points.len() - 1;
            for (i, e) in dex.entry_points.iter().enumerate() {
                let w = e.user_weight.max(0.0);
                if roll < w {
                    chosen = i;
                    break;
                }
                roll -= w;
            }
            chosen
        };
        let ep = &dex.entry_points[entry_index];
        let args = ep
            .params
            .iter()
            .enumerate()
            .map(|(i, d)| user_arg(d, &ep.event, i, rng))
            .collect();
        Some(EventInvocation { entry_index, args })
    }
}

/// Summary of a driven session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Events fired.
    pub events: u64,
    /// Events that completed without fault.
    pub completed: u64,
    /// Events ending in a fault (including responses firing).
    pub faulted: u64,
    /// Virtual ms at session end.
    pub end_ms: u64,
}

/// Drives `vm` with events from `source` for `minutes` of virtual time at
/// `events_per_minute`, inserting idle think-time between events.
///
/// Stops early if the app is killed or the source runs dry; a frozen app
/// keeps consuming wall-clock without progress, as on a real device.
pub fn run_session(
    vm: &mut Vm,
    source: &mut dyn EventSource,
    rng: &mut StdRng,
    minutes: u64,
    events_per_minute: u64,
) -> SessionReport {
    let mut report = SessionReport::default();
    let deadline_ms = vm.clock_ms() + minutes * 60_000;
    let idle_ms = 60_000 / events_per_minute.max(1);
    while vm.clock_ms() < deadline_ms {
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
        let dex = vm.pkg.dex.clone();
        let Some(ev) = source.next_event(&dex, rng) else {
            break;
        };
        let outcome = vm.fire_entry(ev.entry_index, ev.args);
        report.events += 1;
        if outcome.completed() {
            report.completed += 1;
        } else {
            report.faulted += 1;
        }
        vm.advance_ms(idle_ms);
    }
    report.end_ms = vm.clock_ms();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn favorites_are_deterministic_and_in_domain() {
        let d = ParamDomain::IntRange(10, 1_000);
        let a = param_favorites(&d, "onTap", 0);
        let b = param_favorites(&d, "onTap", 0);
        assert_eq!(a, b);
        for v in &a {
            match v {
                Value::Int(i) => assert!((10..=1_000).contains(i)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Different events get different favourites.
        assert_ne!(a, param_favorites(&d, "onSwipe", 0));
    }

    #[test]
    fn text_favorites_are_pronounceable() {
        let d = ParamDomain::Text { max_len: 12 };
        for v in param_favorites(&d, "onSearch", 1) {
            let Value::Str(s) = v else {
                panic!("not a string")
            };
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn uniform_arg_respects_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            match uniform_arg(&ParamDomain::IntRange(-5, 5), &mut rng) {
                RtValue::Int(i) => assert!((-5..=5).contains(&i)),
                other => panic!("unexpected {other:?}"),
            }
        }
        match uniform_arg(
            &ParamDomain::Choice(vec![Value::str("a"), Value::str("b")]),
            &mut rng,
        ) {
            RtValue::Str(s) => assert!(&*s == "a" || &*s == "b"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn user_args_mostly_hit_favorites() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = ParamDomain::IntRange(0, 1_000_000);
        let favs: Vec<i64> = param_favorites(&d, "e", 0)
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        let mut hits = 0;
        for _ in 0..1_000 {
            if let RtValue::Int(i) = user_arg(&d, "e", 0, &mut rng) {
                if favs.contains(&i) {
                    hits += 1;
                }
            }
        }
        // ~75% should be favourites; a uniform draw over a million values
        // would essentially never hit them.
        assert!(hits > 600, "only {hits}/1000 favourite hits");
    }
}
