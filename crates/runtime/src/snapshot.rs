//! Copy-on-write session snapshots: capture a booted (and possibly warmed)
//! VM's state and mint new sessions from it in O(changed-state).
//!
//! The VM's heap (`statics`, `objects`, `arrays`) lives behind [`Arc`]s, so
//! a snapshot is a handful of refcount bumps; a forked session mutates its
//! heap through `Arc::make_mut`, cloning only what it actually touches.
//! This is the sfuzz-style reset primitive: boot once, run static init or
//! warm-up events once, then fork thousands of independent sessions — the
//! market-scale fleet simulator and coverage-guided attackers both sit on
//! top of [`SessionPool`].
//!
//! A fork from a *pristine* snapshot (taken right after [`Vm::new`], before
//! any event) is bit-identical to a cold boot with the same environment and
//! seed — which is what lets the fleet harness route every boot through a
//! pool without changing a single observable byte.

use crate::env::DeviceEnv;
use crate::package::InstalledPackage;
use crate::telemetry::Telemetry;
use crate::value::RtValue;
use crate::vm::{CovEdge, Fragment, OpMix, Vm, VmOptions};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A captured session state. Cheap to clone and [`Send`]/[`Sync`]: heap
/// state is shared copy-on-write with the VM it was taken from and with
/// every session forked out of it.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    pkg: Arc<InstalledPackage>,
    env: DeviceEnv,
    opts: VmOptions,
    rng: StdRng,
    statics: Arc<HashMap<String, RtValue>>,
    objects: Arc<Vec<BTreeMap<Arc<str>, RtValue>>>,
    arrays: Arc<Vec<Vec<RtValue>>>,
    telemetry: Telemetry,
    blob_cache: HashMap<u32, Arc<Fragment>>,
    clock_ms: u64,
    instr_accum: u64,
    fuel: u64,
    killed: bool,
    frozen: bool,
    decoded_engine: bool,
    op_mix: OpMix,
    coverage: Option<BTreeSet<CovEdge>>,
}

impl Vm {
    /// Captures the complete session state: heap (by `Arc`, O(1)),
    /// telemetry, virtual clock, RNG position, and the decrypted-fragment
    /// cache.
    pub fn snapshot(&self) -> VmSnapshot {
        if bombdroid_obs::enabled() {
            bombdroid_obs::counter_add("vm.snapshot.captures", 1);
        }
        VmSnapshot {
            pkg: Arc::clone(&self.pkg),
            env: self.env.clone(),
            opts: self.opts.clone(),
            rng: self.rng.clone(),
            statics: Arc::clone(&self.statics),
            objects: Arc::clone(&self.objects),
            arrays: Arc::clone(&self.arrays),
            telemetry: self.telemetry.clone(),
            blob_cache: self.blob_cache.clone(),
            clock_ms: self.clock_ms,
            instr_accum: self.instr_accum,
            fuel: self.fuel,
            killed: self.killed,
            frozen: self.frozen,
            decoded_engine: self.decoded_engine,
            op_mix: self.op_mix,
            coverage: self.coverage.clone(),
        }
    }

    /// Forks a fresh session from this VM's current state — shorthand for
    /// `self.snapshot().fork(env, seed)` without materializing the
    /// intermediate snapshot.
    pub fn fork(&self, env: DeviceEnv, seed: u64) -> Vm {
        self.snapshot().fork(env, seed)
    }
}

impl VmSnapshot {
    /// Resumes the captured session exactly where it left off: same device
    /// environment, RNG position, telemetry, clock, and heap.
    pub fn resume(&self) -> Vm {
        if bombdroid_obs::enabled() {
            bombdroid_obs::counter_add("vm.fork.sessions", 1);
        }
        Vm {
            pkg: Arc::clone(&self.pkg),
            env: self.env.clone(),
            opts: self.opts.clone(),
            rng: self.rng.clone(),
            statics: Arc::clone(&self.statics),
            objects: Arc::clone(&self.objects),
            arrays: Arc::clone(&self.arrays),
            telemetry: self.telemetry.clone(),
            blob_cache: self.blob_cache.clone(),
            clock_ms: self.clock_ms,
            instr_accum: self.instr_accum,
            fuel: self.fuel,
            killed: self.killed,
            frozen: self.frozen,
            decoded_engine: self.decoded_engine,
            // Snapshots exist only at event boundaries, where per-event
            // call-count deltas are always drained.
            call_deltas: Vec::new(),
            called_ids: Vec::new(),
            op_mix: self.op_mix,
            coverage: self.coverage.clone(),
        }
    }

    /// Forks a *new* session from the captured state: the warmed heap,
    /// decrypted-fragment cache, and shared decoded program carry over
    /// (copy-on-write), but the session gets its own device environment,
    /// a fresh RNG seeded from `seed`, fresh telemetry, and a zeroed
    /// virtual clock. A fork of a pristine snapshot is bit-identical to
    /// `Vm::new(pkg, env, seed, opts)`.
    pub fn fork(&self, env: DeviceEnv, seed: u64) -> Vm {
        if bombdroid_obs::enabled() {
            bombdroid_obs::counter_add("vm.fork.sessions", 1);
        }
        Vm {
            pkg: Arc::clone(&self.pkg),
            env,
            opts: self.opts.clone(),
            rng: StdRng::seed_from_u64(seed),
            statics: Arc::clone(&self.statics),
            objects: Arc::clone(&self.objects),
            arrays: Arc::clone(&self.arrays),
            telemetry: Telemetry::new(),
            blob_cache: self.blob_cache.clone(),
            clock_ms: 0,
            instr_accum: 0,
            fuel: 0,
            killed: false,
            frozen: false,
            decoded_engine: self.decoded_engine,
            // Snapshots exist only at event boundaries, where per-event
            // call-count deltas are always drained.
            call_deltas: Vec::new(),
            called_ids: Vec::new(),
            // Like telemetry: a fork is a new session, so its execution
            // mix starts from zero.
            op_mix: OpMix::default(),
            // Coverage is per-session feedback: a fork starts empty (but
            // keeps collection enabled iff the snapshot had it on).
            coverage: self.opts.collect_coverage.then(BTreeSet::new),
        }
    }

    /// The package this snapshot executes.
    pub fn package(&self) -> &Arc<InstalledPackage> {
        &self.pkg
    }
}

/// A factory of sessions for one installed package, used by the fleet
/// harness and the market simulator to boot many devices without repeating
/// per-package work (the decoded program is built once and shared; a warmed
/// pool additionally shares post-init heap and fragment caches).
#[derive(Debug)]
pub struct SessionPool {
    pkg: Arc<InstalledPackage>,
    opts: VmOptions,
    snap: Option<VmSnapshot>,
}

impl SessionPool {
    /// A pristine pool: sessions are bit-identical to direct
    /// `Vm::new(pkg, env, seed, opts)` boots.
    pub fn new(pkg: impl Into<Arc<InstalledPackage>>, opts: VmOptions) -> Self {
        SessionPool {
            pkg: pkg.into(),
            opts,
            snap: None,
        }
    }

    /// A pool that forks every session from a warmed snapshot.
    pub fn warmed(snap: VmSnapshot) -> Self {
        SessionPool {
            pkg: Arc::clone(&snap.pkg),
            opts: snap.opts.clone(),
            snap: Some(snap),
        }
    }

    /// The pooled package.
    pub fn package(&self) -> &Arc<InstalledPackage> {
        &self.pkg
    }

    /// Mints a session for one device. Records pool reuse stats:
    /// `vm.pool.sessions` counts every mint, split into
    /// `vm.pool.forked` (warmed snapshot reused) vs `vm.pool.cold`
    /// (full boot) — the reuse ratio is forked/sessions.
    pub fn session(&self, env: DeviceEnv, seed: u64) -> Vm {
        if bombdroid_obs::enabled() {
            bombdroid_obs::counter_add("vm.pool.sessions", 1);
            bombdroid_obs::counter_add(
                if self.snap.is_some() {
                    "vm.pool.forked"
                } else {
                    "vm.pool.cold"
                },
                1,
            );
        }
        match &self.snap {
            Some(snap) => snap.fork(env, seed),
            None => Vm::new(Arc::clone(&self.pkg), env, seed, self.opts.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_session, RandomEventSource};
    use crate::vm::VmEngine;
    use bombdroid_apk::{package_app, AppMeta, DeveloperKey, StringsXml};
    use bombdroid_dex::{
        Class, DexFile, EntryPoint, FieldRef, MethodBuilder, MethodRef, Reg, Value,
    };
    use rand::SeedableRng;

    fn fixture() -> InstalledPackage {
        let mut dex = DexFile::new();
        let mut c = Class::new("Main");
        let mut b = MethodBuilder::new("Main", "bump", 0);
        let count = FieldRef::new("Main", "count");
        b.get_static(Reg(0), count.clone());
        b.bin_const(bombdroid_dex::BinOp::Add, Reg(0), Reg(0), 1);
        b.put_static(count, Reg(0));
        b.ret(Reg(0));
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex.entry_points.push(EntryPoint {
            event: Arc::from("onBump"),
            method: MethodRef::new("Main", "bump"),
            params: vec![],
            user_weight: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let dev = DeveloperKey::generate(&mut rng);
        let apk = package_app(&dex, StringsXml::new(), AppMeta::named("snap"), &dev);
        InstalledPackage::install(&apk).unwrap()
    }

    fn env(seed: u64) -> DeviceEnv {
        DeviceEnv::sample(&mut StdRng::seed_from_u64(seed))
    }

    fn drive(vm: &mut Vm, n: u64) {
        let mref = MethodRef::new("Main", "bump");
        for _ in 0..n {
            let out = vm.fire_method(&mref, vec![]);
            assert!(out.completed(), "{:?}", out.result);
        }
    }

    #[test]
    fn pristine_fork_is_bit_identical_to_cold_boot() {
        let pkg = Arc::new(fixture());
        for engine in [VmEngine::Decoded, VmEngine::Legacy] {
            let opts = VmOptions {
                engine,
                ..VmOptions::default()
            };
            let pool = {
                let booted = Vm::new(Arc::clone(&pkg), env(1), 0, opts.clone());
                SessionPool::warmed(booted.snapshot())
            };
            let mut forked = pool.session(env(2), 99);
            let mut cold = Vm::new(Arc::clone(&pkg), env(2), 99, opts);
            drive(&mut forked, 5);
            drive(&mut cold, 5);
            assert_eq!(forked.telemetry(), cold.telemetry());
            assert_eq!(forked.statics_snapshot(), cold.statics_snapshot());
            assert_eq!(forked.clock_ms(), cold.clock_ms());
        }
    }

    #[test]
    fn resume_continues_exactly_and_forks_are_isolated() {
        let pkg = Arc::new(fixture());
        let mut vm = Vm::boot(Arc::clone(&pkg), env(3), 7);
        drive(&mut vm, 10);
        let snap = vm.snapshot();

        // Resuming twice and driving identically produces identical state.
        let mut a = snap.resume();
        let mut b = snap.resume();
        drive(&mut a, 3);
        drive(&mut b, 3);
        assert_eq!(a.telemetry(), b.telemetry());
        assert_eq!(a.statics_snapshot(), b.statics_snapshot());

        // The original keeps its pre-snapshot state and mutating it does
        // not bleed into resumed sessions (copy-on-write).
        drive(&mut vm, 1);
        assert_eq!(
            vm.statics_snapshot(),
            vec![("Main.count".to_string(), "11".to_string())]
        );
        assert_eq!(
            a.statics_snapshot(),
            vec![("Main.count".to_string(), "13".to_string())]
        );

        // A fork starts fresh telemetry but inherits the warmed heap.
        let fork = snap.fork(env(4), 1);
        assert_eq!(fork.telemetry(), &Telemetry::new());
        assert_eq!(
            fork.statics_snapshot(),
            vec![("Main.count".to_string(), "10".to_string())]
        );
    }

    #[test]
    fn forked_random_sessions_match_cold_boots_end_to_end() {
        // The fleet-harness contract: routing boots through a pristine pool
        // changes nothing observable, even across full random sessions.
        let pkg = Arc::new(fixture());
        let pool = SessionPool::new(Arc::clone(&pkg), VmOptions::default());
        for seed in [1u64, 2, 3] {
            let run = |mut vm: Vm| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut source = RandomEventSource;
                run_session(&mut vm, &mut source, &mut rng, 20, 60);
                (vm.statics_snapshot(), vm.into_telemetry())
            };
            let cold = run(Vm::boot(Arc::clone(&pkg), env(seed), seed));
            let pooled = run(pool.session(env(seed), seed));
            assert_eq!(cold, pooled, "seed {seed}");
        }
    }

    #[test]
    fn fork_shares_decoded_program_with_parent() {
        let pkg = Arc::new(fixture());
        let mut vm = Vm::boot(Arc::clone(&pkg), env(5), 1);
        drive(&mut vm, 1);
        // The decoded program lives on the package, so a fork (same Arc)
        // reuses it rather than re-decoding.
        let fork = vm.fork(env(6), 2);
        assert!(Arc::ptr_eq(&vm.pkg, &fork.pkg));
    }

    #[test]
    fn const_value_roundtrip() {
        // Guard the fixture assumptions: statics default to Int(0).
        let pkg = Arc::new(fixture());
        let mut vm = Vm::boot(pkg, env(7), 1);
        let out = vm.fire_method(&MethodRef::new("Main", "bump"), vec![]);
        assert!(out.completed());
        assert_eq!(
            vm.statics_snapshot(),
            vec![("Main.count".to_string(), Value::Int(1).to_string())]
        );
    }
}
