//! The virtual machine core — our stand-in for the ART runtime.
//!
//! Executes installed packages event-by-event with a deterministic cost
//! model (instructions ↦ virtual milliseconds), dispatches framework shims,
//! and implements the two bomb instructions: salted hashing and
//! decrypt-and-execute with fragment caching ("the code decryption is
//! one-time effort by caching it in memory", paper §8.4).
//!
//! The execution engine is layered across three sibling modules:
//! [`crate::decode`] lowers method bodies once into flat [`DecodedOp`]
//! arrays, [`crate::exec`] holds both dispatch loops (the pre-decoded
//! engine and the legacy tree-walker it must stay bit-identical to), and
//! [`crate::snapshot`] provides copy-on-write session snapshots and
//! `Vm::fork`. This module owns the VM state, the cost model, and the
//! framework shims shared by both engines.
//!
//! [`DecodedOp`]: crate::decode::DecodedOp

use crate::decode::{self, DecodedBody, DecodedProgram};
use crate::env::{DeviceEnv, EnvValue};
use crate::package::InstalledPackage;
use crate::telemetry::{ResponseEvent, ResponseKind, Telemetry};
use crate::value::RtValue;
use bombdroid_crypto::{blob, kdf};
use bombdroid_dex::{wire, BinOp, BlobId, CondOp, HostApi, Instr, MethodRef, Reg, StrOp};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// One observed control-flow edge on the decoded engine:
/// `(coverage unit, from decoded pc, to decoded pc)`.
///
/// The unit is the decoded program's flat method id for method bodies and
/// `0x8000_0000 | blob id` for decrypted fragments (fragment ops are
/// numbered from zero in their own body, so without the unit tag a
/// fragment edge could alias a host-method edge). Plain tuples keep the
/// set `Ord`-sorted, so exports are deterministic.
pub type CovEdge = (u32, u32, u32);

/// Attacker-side hooks: an analyst may "hack and modify their own Android
/// systems arbitrarily" (paper §2.2), so the VM can be instrumented when it
/// plays the attacker's device.
#[derive(Debug, Clone, Default)]
pub struct AttackerHooks {
    /// Make `getPublicKey` (direct and reflective) return these bytes.
    pub fake_public_key: Option<Vec<u8>>,
    /// Force the framework RNG to a constant (defeats SSN's probabilistic
    /// invocation).
    pub force_random: Option<i64>,
    /// Record every reflective call's resolved name (defeats SSN's name
    /// obfuscation).
    pub trace_reflection: bool,
}

/// Which execution engine a VM runs its bytecode on. Both engines are
/// bit-identical in telemetry, cost charging, and observable behavior
/// (proven by the behavior-preservation suite's telemetry-identity mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmEngine {
    /// Resolve from the `BOMBDROID_VM` environment variable at boot:
    /// `legacy` selects the tree-walker, anything else (or unset) the
    /// pre-decoded engine. Read once per process.
    #[default]
    Auto,
    /// The pre-decoded engine (default): flat ops, fused superinstructions.
    Decoded,
    /// The legacy tree-walking interpreter over `dex::Instr`. Kept as a
    /// release-level fallback for one release; scheduled for removal.
    Legacy,
}

impl VmEngine {
    /// Whether this selection resolves to the decoded engine.
    pub fn is_decoded(self) -> bool {
        match self {
            VmEngine::Decoded => true,
            VmEngine::Legacy => false,
            VmEngine::Auto => {
                static ENV_LEGACY: OnceLock<bool> = OnceLock::new();
                !*ENV_LEGACY
                    .get_or_init(|| std::env::var("BOMBDROID_VM").is_ok_and(|v| v == "legacy"))
            }
        }
    }
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Instruction budget per fired event (infinite loops hit this).
    pub fuel_per_event: u64,
    /// Instructions per virtual millisecond (the cost model's clock rate).
    pub instr_per_ms: u64,
    /// Record scalar field writes (profiling mode).
    pub record_field_values: bool,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Share decrypted fragments across VMs in this process (fleet
    /// simulations where many devices run the same protected app). Keyed by
    /// (blob id, blob content fingerprint, derived key), so a hit proves the
    /// same ciphertext was opened with the same key — per-VM cost charging
    /// and [`Telemetry`] are identical with the cache on or off.
    pub shared_fragment_cache: bool,
    /// Execution engine selection (tests pin this explicitly; everything
    /// else uses [`VmEngine::Auto`] and the `BOMBDROID_VM` variable).
    pub engine: VmEngine,
    /// Record control-flow edges ([`CovEdge`]) from the decoded dispatch
    /// loop — the greybox fuzzer's feedback signal. Off by default: the
    /// plain dispatch path pays a single branch on an always-`None` option,
    /// and coverage recording never charges cost-model instructions, so
    /// telemetry is bit-identical with the flag on or off.
    pub collect_coverage: bool,
    /// Attacker instrumentation.
    pub hooks: AttackerHooks,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            fuel_per_event: 300_000,
            instr_per_ms: 2_000,
            record_field_values: false,
            max_call_depth: 64,
            shared_fragment_cache: false,
            engine: VmEngine::Auto,
            collect_coverage: false,
            hooks: AttackerHooks::default(),
        }
    }
}

/// Process-wide decrypted-fragment cache (see
/// [`VmOptions::shared_fragment_cache`]). The fingerprint covers salt and
/// ciphertext, so a tampered blob or a differently-salted protection of the
/// same app can never collide with a cached entry. The cache stores *raw*
/// fragments: decoded forms hold package-specific resolved call targets, so
/// they live in the per-VM [`Fragment`] wrapper (shared across forks of one
/// snapshot, which by construction run the same package).
type SharedFragmentKey = (u32, bombdroid_crypto::Digest256, bombdroid_crypto::Key128);

fn shared_fragments() -> &'static Mutex<HashMap<SharedFragmentKey, Arc<Vec<Instr>>>> {
    static CACHE: OnceLock<Mutex<HashMap<SharedFragmentKey, Arc<Vec<Instr>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A decrypted fragment as cached by one VM: the raw instruction form (fed
/// to the legacy engine and the process-wide cache) plus its lazily decoded
/// form.
#[derive(Debug)]
pub(crate) struct Fragment {
    pub raw: Arc<Vec<Instr>>,
    decoded: OnceLock<Arc<DecodedBody>>,
}

impl Fragment {
    /// The decoded form, lowered on first use with this package's resolved
    /// call targets.
    pub fn decoded_body(&self, pkg: &InstalledPackage, prog: &DecodedProgram) -> &Arc<DecodedBody> {
        self.decoded.get_or_init(|| {
            let body = decode::decode_body(pkg, prog, &self.raw);
            if bombdroid_obs::enabled() {
                bombdroid_obs::counter_add("vm.decode.fragments", 1);
            }
            Arc::new(body)
        })
    }
}

/// A runtime fault. Responses deliberately inject some of these into
/// repackaged apps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Null dereference.
    NullDeref,
    /// Operand had the wrong type.
    TypeError(&'static str),
    /// Integer division by zero.
    DivByZero,
    /// Array index out of bounds.
    IndexOutOfBounds,
    /// Call to a method that does not exist.
    UnknownMethod(MethodRef),
    /// Reflective call name did not resolve.
    UnknownReflectTarget(String),
    /// A `DecryptExec` failed to authenticate (wrong key or tampering).
    DecryptFailed,
    /// Decrypted bytes were not a valid fragment (tampered blob).
    FragmentDecode,
    /// Explicit `throw`.
    Thrown(String),
    /// Call depth exceeded.
    StackOverflow,
    /// Instruction budget exhausted (endless loop / freeze).
    OutOfFuel,
    /// The process was killed by a response.
    Killed,
    /// The app is frozen by a response.
    Frozen,
    /// Event index out of range or arity mismatch.
    BadEvent(String),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NullDeref => write!(f, "null dereference"),
            Fault::TypeError(what) => write!(f, "type error: {what}"),
            Fault::DivByZero => write!(f, "division by zero"),
            Fault::IndexOutOfBounds => write!(f, "array index out of bounds"),
            Fault::UnknownMethod(m) => write!(f, "unknown method {m}"),
            Fault::UnknownReflectTarget(n) => write!(f, "unknown reflection target {n:?}"),
            Fault::DecryptFailed => write!(f, "payload decryption failed"),
            Fault::FragmentDecode => write!(f, "decrypted fragment is malformed"),
            Fault::Thrown(m) => write!(f, "thrown: {m}"),
            Fault::StackOverflow => write!(f, "stack overflow"),
            Fault::OutOfFuel => write!(f, "event exceeded instruction budget"),
            Fault::Killed => write!(f, "process killed"),
            Fault::Frozen => write!(f, "app frozen"),
            Fault::BadEvent(m) => write!(f, "bad event: {m}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Outcome of firing one event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// `Ok(())` or the fault that ended the event.
    pub result: Result<(), Fault>,
    /// Instructions executed by this event.
    pub instr: u64,
}

impl EventOutcome {
    /// Whether the event ran to completion.
    pub fn completed(&self) -> bool {
        self.result.is_ok()
    }
}

pub(crate) enum Flow {
    Done,
    Returned(RtValue),
}

/// Deterministic execution-mix counters for one session: how often each
/// fused superinstruction dispatched, how the per-session fragment cache
/// behaved, and how many decoded method bodies were fetched. Plain `u64`
/// fields (not facade calls) so the dispatch hot loop pays one increment;
/// [`Vm::publish_obs`] folds them into the active recorder at session end.
/// Every field depends only on the session's event sequence — never on
/// scheduling — so the counters honor the fleet determinism contract.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OpMix {
    pub(crate) hash_if: u64,
    pub(crate) binop_const_if: u64,
    pub(crate) const_if: u64,
    pub(crate) arith_chain: u64,
    pub(crate) const_array_get: u64,
    pub(crate) frag_cache_hits: u64,
    pub(crate) frag_cache_misses: u64,
    pub(crate) decode_body_fetches: u64,
}

/// The virtual machine for one app process on one device.
///
/// Heap state (`statics`, `objects`, `arrays`) lives behind [`Arc`]s with
/// copy-on-write mutation, so [`Vm::snapshot`] and [`Vm::fork`] capture and
/// resume sessions in O(changed-state) instead of deep-copying; a VM that
/// never forks pays only an uncontended refcount check per mutation.
#[derive(Debug)]
pub struct Vm {
    /// Installed package being executed. Shared: booting a second device
    /// for the same package is an [`Arc`] clone, not a bytecode copy.
    pub pkg: Arc<InstalledPackage>,
    /// Device environment.
    pub env: DeviceEnv,
    pub(crate) opts: VmOptions,
    pub(crate) rng: StdRng,
    pub(crate) statics: Arc<HashMap<String, RtValue>>,
    pub(crate) objects: Arc<Vec<BTreeMap<Arc<str>, RtValue>>>,
    pub(crate) arrays: Arc<Vec<Vec<RtValue>>>,
    pub(crate) telemetry: Telemetry,
    pub(crate) blob_cache: HashMap<u32, Arc<Fragment>>,
    pub(crate) clock_ms: u64,
    pub(crate) instr_accum: u64,
    pub(crate) fuel: u64,
    pub(crate) killed: bool,
    pub(crate) frozen: bool,
    /// Engine selection resolved at boot (so a mid-run env change can never
    /// switch engines under a session).
    pub(crate) decoded_engine: bool,
    /// Decoded-engine call counts accumulated since the last event
    /// boundary, indexed by flat decoded method id. The hot path pays a
    /// vector increment per call; [`Vm::fold_call_deltas`] moves the
    /// totals into `telemetry.method_calls` before any observer can look.
    pub(crate) call_deltas: Vec<u64>,
    /// Ids with a nonzero entry in `call_deltas`, so folding walks only
    /// the methods the event actually touched.
    pub(crate) called_ids: Vec<u32>,
    /// Deterministic per-session execution-mix counters (see [`OpMix`]).
    pub(crate) op_mix: OpMix,
    /// Observed control-flow edges, `Some` iff
    /// [`VmOptions::collect_coverage`] is set (an empty `BTreeSet` is
    /// allocation-free, so the disabled case costs nothing at runtime).
    pub(crate) coverage: Option<BTreeSet<CovEdge>>,
}

impl Vm {
    /// Boots an app process for `pkg` on a device with environment `env`.
    ///
    /// Accepts the package by value or as an [`Arc`]; fleet callers booting
    /// many devices for one package should pass `Arc` clones (or better,
    /// fork sessions from a [`crate::snapshot::SessionPool`]).
    pub fn new(
        pkg: impl Into<Arc<InstalledPackage>>,
        env: DeviceEnv,
        seed: u64,
        opts: VmOptions,
    ) -> Self {
        let pkg = pkg.into();
        let decoded_engine = opts.engine.is_decoded();
        let coverage = opts.collect_coverage.then(BTreeSet::new);
        Vm {
            pkg,
            env,
            opts,
            rng: StdRng::seed_from_u64(seed),
            statics: Arc::new(HashMap::new()),
            objects: Arc::new(Vec::new()),
            arrays: Arc::new(Vec::new()),
            telemetry: Telemetry::new(),
            blob_cache: HashMap::new(),
            clock_ms: 0,
            instr_accum: 0,
            fuel: 0,
            killed: false,
            frozen: false,
            decoded_engine,
            call_deltas: Vec::new(),
            called_ids: Vec::new(),
            op_mix: OpMix::default(),
            coverage,
        }
    }

    /// Convenience constructor with default options.
    pub fn boot(pkg: impl Into<Arc<InstalledPackage>>, env: DeviceEnv, seed: u64) -> Self {
        Vm::new(pkg, env, seed, VmOptions::default())
    }

    /// Telemetry recorded so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Consumes the VM and returns its telemetry.
    pub fn into_telemetry(self) -> Telemetry {
        self.telemetry
    }

    /// Publishes this VM's telemetry-derived metrics (instruction volume,
    /// decrypt success/failure, triggered bombs, responses) into the
    /// active `bombdroid-obs` recorder. Harness code calls this once per
    /// finished run; pairing `vm.instr_executed` with the harness's
    /// `vm.drive`/`vm.session` span yields instructions-per-second, and
    /// `vm.decrypt_failures` over `vm.decrypt_failures +
    /// vm.blobs_decrypted` is the decrypt-failure rate.
    pub fn publish_obs(&self) {
        if !bombdroid_obs::enabled() {
            return;
        }
        let t = &self.telemetry;
        bombdroid_obs::counter_add("vm.runs", 1);
        bombdroid_obs::counter_add("vm.instr_executed", t.instr_executed);
        bombdroid_obs::counter_add("vm.events_run", t.events_run);
        bombdroid_obs::counter_add("vm.blobs_decrypted", t.blobs_decrypted.len() as u64);
        bombdroid_obs::counter_add("vm.decrypt_failures", t.decrypt_failures);
        bombdroid_obs::counter_add("vm.bombs_triggered", t.markers.len() as u64);
        bombdroid_obs::counter_add("vm.responses", t.responses.len() as u64);
        bombdroid_obs::counter_add("vm.piracy_reports", t.piracy_reports);
        // Execution-mix counters, skipped when zero to keep recorders
        // sparse (the skip depends only on the deterministic values, so
        // merged totals stay thread-count-independent).
        let m = &self.op_mix;
        for (name, v) in [
            ("vm.ops.hash_if", m.hash_if),
            ("vm.ops.binop_const_if", m.binop_const_if),
            ("vm.ops.const_if", m.const_if),
            ("vm.ops.arith_chain", m.arith_chain),
            ("vm.ops.const_array_get", m.const_array_get),
            ("vm.frag_cache.hits", m.frag_cache_hits),
            ("vm.frag_cache.misses", m.frag_cache_misses),
            ("vm.decode.body_fetches", m.decode_body_fetches),
        ] {
            if v > 0 {
                bombdroid_obs::counter_add(name, v);
            }
        }
    }

    /// Records one taken control-flow edge. A no-op (single `None` branch)
    /// unless [`VmOptions::collect_coverage`] was set at boot. Deliberately
    /// does **not** [`charge`](Vm::charge): the cost model, fuel, and
    /// telemetry must be bit-identical with coverage on or off, so the
    /// perf guard can assert zero overhead from the deterministic side.
    #[inline]
    pub(crate) fn cov_edge(&mut self, unit: u32, from: u32, to: u32) {
        if let Some(cov) = &mut self.coverage {
            cov.insert((unit, from, to));
        }
    }

    /// Whether this VM records coverage.
    pub fn coverage_enabled(&self) -> bool {
        self.coverage.is_some()
    }

    /// The control-flow edges observed so far, in sorted order (empty when
    /// [`VmOptions::collect_coverage`] is off).
    pub fn coverage_edges(&self) -> Vec<CovEdge> {
        match &self.coverage {
            Some(cov) => cov.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Takes and clears the observed edges, leaving collection enabled.
    pub fn take_coverage(&mut self) -> Vec<CovEdge> {
        match &mut self.coverage {
            Some(cov) => std::mem::take(cov).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Whether a response killed the process.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Whether a response froze the app.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Advances idle time (user think-time between events).
    pub fn advance_ms(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// A sorted snapshot of all static fields — the app's observable state
    /// (used by differential corruption probes).
    pub fn statics_snapshot(&self) -> Vec<(String, String)> {
        let mut snap: Vec<(String, String)> = self
            .statics
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        snap.sort();
        snap
    }

    /// Executes a detached instruction fragment with a caller-supplied
    /// register file — the primitive behind *forced execution* and
    /// *slice execution* attacks (paper §2.1), where an analyst runs
    /// extracted code outside its original control flow. Detached fragments
    /// always run on the tree-walker: they are attacker-side one-shots, so
    /// pre-decoding would cost more than it saves.
    pub fn run_detached_fragment(
        &mut self,
        body: &[Instr],
        mut regs: Vec<RtValue>,
    ) -> Result<Option<RtValue>, Fault> {
        self.fuel = self.opts.fuel_per_event;
        let mref = MethodRef::new("<detached>", "fragment");
        let flow = self.exec_body(&mref, body, &mut regs, 0);
        // Fragment code may invoke package methods; account them before
        // the caller can observe telemetry.
        self.fold_call_deltas();
        match flow? {
            Flow::Returned(v) => Ok(Some(v)),
            Flow::Done => Ok(None),
        }
    }

    /// Fires entry point `index` with `args`.
    pub fn fire_entry(&mut self, index: usize, args: Vec<RtValue>) -> EventOutcome {
        let dex = self.pkg.dex.clone();
        let Some(entry) = dex.entry_points.get(index) else {
            return EventOutcome {
                result: Err(Fault::BadEvent(format!("no entry point {index}"))),
                instr: 0,
            };
        };
        self.fire_method(&entry.method.clone(), args)
    }

    /// Fires an arbitrary method as an event (also used by forced-execution
    /// attacks, which call internal methods directly).
    pub fn fire_method(&mut self, mref: &MethodRef, args: Vec<RtValue>) -> EventOutcome {
        if self.killed {
            return EventOutcome {
                result: Err(Fault::Killed),
                instr: 0,
            };
        }
        if self.frozen {
            return EventOutcome {
                result: Err(Fault::Frozen),
                instr: 0,
            };
        }
        self.fuel = self.opts.fuel_per_event;
        self.telemetry.events_run += 1;
        let before = self.telemetry.instr_executed;
        let result = self.call(mref, args, 0).map(|_| ());
        self.fold_call_deltas();
        EventOutcome {
            instr: self.telemetry.instr_executed - before,
            result,
        }
    }

    /// Folds the decoded engine's per-event call-count deltas into
    /// `telemetry.method_calls`. Runs at every event boundary (and after
    /// detached fragments), so external observers — `telemetry()`,
    /// snapshots, forks — always see fully-accounted counts: nothing can
    /// inspect a VM mid-event.
    fn fold_call_deltas(&mut self) {
        if self.called_ids.is_empty() {
            return;
        }
        let prog = self.pkg.decoded_program();
        for id in self.called_ids.drain(..) {
            let n = std::mem::take(&mut self.call_deltas[id as usize]);
            let mref = prog.entry(id as usize).mref.clone();
            *self.telemetry.method_calls.entry(mref).or_insert(0) += n;
        }
    }

    #[inline]
    pub(crate) fn charge(&mut self, cost: u64) -> Result<(), Fault> {
        self.telemetry.instr_executed += cost;
        self.instr_accum += cost;
        while self.instr_accum >= self.opts.instr_per_ms {
            self.instr_accum -= self.opts.instr_per_ms;
            self.clock_ms += 1;
        }
        if self.fuel < cost {
            self.fuel = 0;
            return Err(Fault::OutOfFuel);
        }
        self.fuel -= cost;
        Ok(())
    }

    /// Calls `mref` on whichever engine this VM runs. The depth check comes
    /// first on both paths (a too-deep call to a missing method is a
    /// `StackOverflow`, not `UnknownMethod`).
    pub(crate) fn call(
        &mut self,
        mref: &MethodRef,
        args: Vec<RtValue>,
        depth: usize,
    ) -> Result<RtValue, Fault> {
        if self.decoded_engine {
            if depth >= self.opts.max_call_depth {
                return Err(Fault::StackOverflow);
            }
            let prog = self.pkg.decoded_program();
            return match prog.resolve(&self.pkg, mref) {
                Some(id) => self.call_decoded(&prog, id, args, depth),
                None => Err(Fault::UnknownMethod(mref.clone())),
            };
        }
        if depth >= self.opts.max_call_depth {
            return Err(Fault::StackOverflow);
        }
        let dex = self.pkg.dex.clone();
        let method = self
            .pkg
            .resolve_method(mref)
            .map(|(ci, mi)| &dex.classes[ci].methods[mi])
            .ok_or_else(|| Fault::UnknownMethod(mref.clone()))?;
        if args.len() != method.params as usize {
            return Err(Fault::BadEvent(format!(
                "{mref}: expected {} args, got {}",
                method.params,
                args.len()
            )));
        }
        *self.telemetry.method_calls.entry(mref.clone()).or_insert(0) += 1;
        let mut regs = vec![RtValue::Null; method.registers.max(args.len() as u16) as usize];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a;
        }
        self.charge(5)?;
        match self.exec_body(mref, &method.body, &mut regs, depth)? {
            Flow::Returned(v) => Ok(v),
            Flow::Done => Ok(RtValue::Null),
        }
    }

    #[inline]
    pub(crate) fn reg(&self, regs: &[RtValue], r: Reg) -> RtValue {
        regs.get(r.0 as usize).cloned().unwrap_or(RtValue::Null)
    }

    #[inline]
    pub(crate) fn set_reg(regs: &mut Vec<RtValue>, r: Reg, v: RtValue) {
        let idx = r.0 as usize;
        if idx >= regs.len() {
            regs.resize(idx + 1, RtValue::Null);
        }
        regs[idx] = v;
    }

    /// Fetches (decrypting and caching if needed) the fragment behind
    /// `blob`, charging exactly like the historical inline sequence: cache
    /// hits charge 2, misses charge `50 + sealed/16` before key derivation.
    /// Shared by both engines.
    pub(crate) fn fragment_for(
        &mut self,
        blob: BlobId,
        key_val: RtValue,
    ) -> Result<Arc<Fragment>, Fault> {
        if let Some(f) = self.blob_cache.get(&blob.0).cloned() {
            // "the code decryption is one-time effort by caching it in
            // memory" (§8.4).
            self.op_mix.frag_cache_hits += 1;
            self.charge(2)?;
            return Ok(f);
        }
        self.op_mix.frag_cache_misses += 1;
        bombdroid_obs::flight::note("vm.frag_cache.miss", || format!("blob {}", blob.0));
        let dex = self.pkg.dex.clone();
        let b = dex.blob(blob).ok_or(Fault::TypeError("dangling blob"))?;
        self.charge(50 + b.sealed.len() as u64 / 16)?;
        let cb = key_val
            .canonical_bytes()
            .ok_or(Fault::TypeError("key source is a reference"))?;
        let key = kdf::derive_key(&cb, &b.salt);
        // With the process-wide cache on, look up (id, fingerprint, key)
        // before doing the real open: a hit proves an identical decryption
        // already succeeded, so only the redundant crypto is skipped — the
        // cost was charged above and the telemetry below records the
        // decrypt either way.
        let shared_key = self.opts.shared_fragment_cache.then(|| {
            let mut fp = bombdroid_crypto::sha256::Sha256::new();
            fp.update(&b.salt);
            fp.update(&b.sealed);
            (blob.0, fp.finalize(), key)
        });
        let shared_hit = shared_key.as_ref().and_then(|k| {
            shared_fragments()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(k)
                .cloned()
        });
        let raw = match shared_hit {
            Some(raw) => raw,
            None => {
                let plaintext = blob::open(&key, &b.sealed).map_err(|_| {
                    self.telemetry.decrypt_failures += 1;
                    bombdroid_obs::flight::note("vm.fault.decrypt", || {
                        format!("blob {} (wrong key or tampered ciphertext)", blob.0)
                    });
                    Fault::DecryptFailed
                })?;
                let instrs = wire::decode_fragment(&plaintext).map_err(|_| {
                    bombdroid_obs::flight::note("vm.fault.fragment_decode", || {
                        format!("blob {}", blob.0)
                    });
                    Fault::FragmentDecode
                })?;
                let raw = Arc::new(instrs);
                if let Some(k) = shared_key {
                    shared_fragments()
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(k, raw.clone());
                }
                raw
            }
        };
        let f = Arc::new(Fragment {
            raw,
            decoded: OnceLock::new(),
        });
        self.blob_cache.insert(blob.0, f.clone());
        self.telemetry.blobs_decrypted.insert(blob.0);
        Ok(f)
    }

    #[inline]
    pub(crate) fn arith(op: BinOp, a: i64, b: i64) -> Result<i64, Fault> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(Fault::DivByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(Fault::DivByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }

    #[inline]
    pub(crate) fn compare(cond: CondOp, a: &RtValue, b: &RtValue) -> Result<bool, Fault> {
        match cond {
            CondOp::Eq | CondOp::Ne => {
                let equal = match (a, b) {
                    (RtValue::Int(_) | RtValue::Bool(_), RtValue::Int(_) | RtValue::Bool(_)) => {
                        a.as_int() == b.as_int()
                    }
                    (RtValue::Str(x), RtValue::Str(y)) => x == y,
                    (RtValue::Bytes(x), RtValue::Bytes(y)) => x == y,
                    (RtValue::Null, RtValue::Null) => true,
                    (RtValue::Obj(x), RtValue::Obj(y)) => x == y,
                    (RtValue::Arr(x), RtValue::Arr(y)) => x == y,
                    _ => false,
                };
                Ok(if cond == CondOp::Eq { equal } else { !equal })
            }
            _ => {
                let x = a
                    .as_int()
                    .ok_or(Fault::TypeError("ordered compare on non-int"))?;
                let y = b
                    .as_int()
                    .ok_or(Fault::TypeError("ordered compare on non-int"))?;
                Ok(match cond {
                    CondOp::Lt => x < y,
                    CondOp::Le => x <= y,
                    CondOp::Gt => x > y,
                    CondOp::Ge => x >= y,
                    CondOp::Eq | CondOp::Ne => unreachable!(),
                })
            }
        }
    }

    /// String-operation core over already-fetched values; both engines'
    /// `StrOp` arms delegate here.
    pub(crate) fn str_op_vals(
        &mut self,
        op: StrOp,
        a: RtValue,
        rhs_val: Option<RtValue>,
    ) -> Result<RtValue, Fault> {
        let s = a
            .as_str()
            .ok_or(Fault::TypeError("strop receiver not string"))?;
        let b_str = |v: &Option<RtValue>| -> Result<String, Fault> {
            match v {
                Some(RtValue::Str(s)) => Ok(s.to_string()),
                Some(RtValue::Int(i)) => Ok(i.to_string()),
                Some(RtValue::Bool(b)) => Ok(b.to_string()),
                _ => Err(Fault::TypeError("strop operand missing or non-scalar")),
            }
        };
        Ok(match op {
            StrOp::Equals => RtValue::Bool(s == b_str(&rhs_val)?),
            StrOp::StartsWith => RtValue::Bool(s.starts_with(&b_str(&rhs_val)?)),
            StrOp::EndsWith => RtValue::Bool(s.ends_with(&b_str(&rhs_val)?)),
            StrOp::Contains => RtValue::Bool(s.contains(&b_str(&rhs_val)?)),
            StrOp::Concat => RtValue::Str(Arc::from(format!("{s}{}", b_str(&rhs_val)?))),
            StrOp::Length => RtValue::Int(s.chars().count() as i64),
            StrOp::HashCode => {
                // Java's String.hashCode.
                let mut h: i32 = 0;
                for c in s.chars() {
                    h = h.wrapping_mul(31).wrapping_add(c as i32);
                }
                RtValue::Int(h as i64)
            }
            StrOp::CharAt => {
                let idx = rhs_val
                    .as_ref()
                    .and_then(|v| v.as_int())
                    .ok_or(Fault::TypeError("charAt index not int"))?;
                let c = s
                    .chars()
                    .nth(usize::try_from(idx).map_err(|_| Fault::IndexOutOfBounds)?)
                    .ok_or(Fault::IndexOutOfBounds)?;
                RtValue::Int(c as i64)
            }
            StrOp::ToUpper => RtValue::Str(Arc::from(s.to_uppercase())),
            StrOp::Rot13 => {
                let rotated: String = s
                    .chars()
                    .map(|c| match c {
                        'a'..='z' => (((c as u8 - b'a' + 13) % 26) + b'a') as char,
                        'A'..='Z' => (((c as u8 - b'A' + 13) % 26) + b'A') as char,
                        other => other,
                    })
                    .collect();
                RtValue::Str(Arc::from(rotated))
            }
            StrOp::Substring => {
                let idx = rhs_val
                    .as_ref()
                    .and_then(|v| v.as_int())
                    .ok_or(Fault::TypeError("substring index not int"))?;
                let idx = usize::try_from(idx).map_err(|_| Fault::IndexOutOfBounds)?;
                if idx > s.chars().count() {
                    return Err(Fault::IndexOutOfBounds);
                }
                RtValue::Str(Arc::from(s.chars().skip(idx).collect::<String>()))
            }
        })
    }

    /// Resolves an array element for read or write; `arr_val`/`idx_val`
    /// were fetched by the caller (fault order: array type, index type,
    /// dangling array, bounds).
    pub(crate) fn array_slot_vals(
        &mut self,
        arr_val: &RtValue,
        idx_val: &RtValue,
    ) -> Result<&mut RtValue, Fault> {
        let id = match arr_val {
            RtValue::Arr(id) => *id,
            RtValue::Null => return Err(Fault::NullDeref),
            _ => return Err(Fault::TypeError("array op on non-array")),
        };
        let i = idx_val
            .as_int()
            .ok_or(Fault::TypeError("array index not int"))?;
        let a = Arc::make_mut(&mut self.arrays)
            .get_mut(id)
            .ok_or(Fault::TypeError("dangling array"))?;
        let i = usize::try_from(i).map_err(|_| Fault::IndexOutOfBounds)?;
        a.get_mut(i).ok_or(Fault::IndexOutOfBounds)
    }

    pub(crate) fn reflect_call(&mut self, name: &str, args: &[RtValue]) -> Result<RtValue, Fault> {
        match name {
            "getPublicKey" => self.host_call(&HostApi::GetPublicKey, args),
            "getManifestDigest" => self.host_call(&HostApi::GetManifestDigest, args),
            "codeDigest" => self.host_call(&HostApi::CodeDigest, args),
            "uptimeMillis" => self.host_call(&HostApi::TimeMillis, args),
            other => Err(Fault::UnknownReflectTarget(other.to_string())),
        }
    }

    pub(crate) fn host_call(&mut self, api: &HostApi, args: &[RtValue]) -> Result<RtValue, Fault> {
        match api {
            HostApi::GetPublicKey => {
                if let Some(fake) = &self.opts.hooks.fake_public_key {
                    return Ok(RtValue::Bytes(Arc::from(fake.as_slice())));
                }
                Ok(RtValue::Bytes(Arc::from(
                    self.pkg.cert_public_key.as_slice(),
                )))
            }
            HostApi::GetManifestDigest => {
                let entry = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("manifest entry name not string"))?;
                Ok(match self.pkg.manifest_digests.get(entry) {
                    Some(d) => RtValue::Bytes(Arc::from(&d[..])),
                    None => RtValue::Null,
                })
            }
            HostApi::GetResourceString => {
                let key = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("resource key not string"))?;
                Ok(match self.pkg.resources.get(key) {
                    Some(s) => RtValue::Str(Arc::from(s.as_str())),
                    None => RtValue::Null,
                })
            }
            HostApi::CodeDigest => {
                let class = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("class name not string"))?;
                Ok(match self.pkg.class_digest(class) {
                    Some(d) => RtValue::Bytes(Arc::from(&d[..])),
                    None => RtValue::Null,
                })
            }
            HostApi::EnvQuery(key) => Ok(match self.env.query(*key) {
                EnvValue::Str(s) => RtValue::Str(Arc::from(s.as_str())),
                EnvValue::Int(i) => RtValue::Int(i),
            }),
            HostApi::Sensor(kind) => {
                let v = self.env.sensor_sample(*kind, &mut self.rng);
                Ok(RtValue::Int(v))
            }
            HostApi::TimeMillis => Ok(RtValue::Int(self.clock_ms as i64)),
            HostApi::WallClockMinute => {
                let minute = (self.env.start_minute as u64 + self.clock_ms / 60_000) % 1_440;
                Ok(RtValue::Int(minute as i64))
            }
            HostApi::Random => {
                if let Some(forced) = self.opts.hooks.force_random {
                    return Ok(RtValue::Int(forced));
                }
                let bound = args.first().and_then(|v| v.as_int()).unwrap_or(i64::MAX);
                if bound <= 0 {
                    return Ok(RtValue::Int(0));
                }
                Ok(RtValue::Int(self.rng.gen_range(0..bound)))
            }
            HostApi::Log => {
                let line: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                self.telemetry.logs.push(line.join(" "));
                Ok(RtValue::Null)
            }
            HostApi::UiNotify(kind) => {
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::UserWarned,
                    at_ms: at,
                });
                let _ = kind;
                Ok(RtValue::Null)
            }
            HostApi::ReportPiracy => {
                self.telemetry.piracy_reports += 1;
                Ok(RtValue::Null)
            }
            HostApi::LeakMemory => {
                self.telemetry.leaked_bytes += 1 << 20;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::MemoryLeaked,
                    at_ms: at,
                });
                Ok(RtValue::Null)
            }
            HostApi::KillProcess => {
                self.killed = true;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::Killed,
                    at_ms: at,
                });
                Err(Fault::Killed)
            }
            HostApi::Freeze => {
                self.frozen = true;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::Frozen,
                    at_ms: at,
                });
                // A frozen app burns its whole event budget spinning.
                self.clock_ms += self.fuel / self.opts.instr_per_ms;
                self.fuel = 0;
                Err(Fault::Frozen)
            }
            HostApi::NullOutField => {
                for v in Arc::make_mut(&mut self.statics).values_mut() {
                    *v = RtValue::Null;
                }
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::FieldNulled,
                    at_ms: at,
                });
                Ok(RtValue::Null)
            }
            HostApi::SleepMs => {
                let ms = args.first().and_then(|v| v.as_int()).unwrap_or(0).max(0);
                self.clock_ms += ms as u64;
                Ok(RtValue::Null)
            }
            HostApi::Marker(id) => {
                if self.telemetry.markers.insert(*id) && self.telemetry.first_marker_ms.is_none() {
                    self.telemetry.first_marker_ms = Some(self.clock_ms);
                }
                Ok(RtValue::Null)
            }
        }
    }
}
