//! The bytecode interpreter — our stand-in for the ART runtime.
//!
//! Executes installed packages event-by-event with a deterministic cost
//! model (instructions ↦ virtual milliseconds), dispatches framework shims,
//! and implements the two bomb instructions: salted hashing and
//! decrypt-and-execute with fragment caching ("the code decryption is
//! one-time effort by caching it in memory", paper §8.4).

use crate::env::{DeviceEnv, EnvValue};
use crate::package::InstalledPackage;
use crate::telemetry::{ResponseEvent, ResponseKind, Telemetry};
use crate::value::RtValue;
use bombdroid_crypto::{blob, kdf};
use bombdroid_dex::{wire, BinOp, CondOp, HostApi, Instr, MethodRef, Reg, RegOrConst, StrOp, UnOp};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Attacker-side hooks: an analyst may "hack and modify their own Android
/// systems arbitrarily" (paper §2.2), so the VM can be instrumented when it
/// plays the attacker's device.
#[derive(Debug, Clone, Default)]
pub struct AttackerHooks {
    /// Make `getPublicKey` (direct and reflective) return these bytes.
    pub fake_public_key: Option<Vec<u8>>,
    /// Force the framework RNG to a constant (defeats SSN's probabilistic
    /// invocation).
    pub force_random: Option<i64>,
    /// Record every reflective call's resolved name (defeats SSN's name
    /// obfuscation).
    pub trace_reflection: bool,
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Instruction budget per fired event (infinite loops hit this).
    pub fuel_per_event: u64,
    /// Instructions per virtual millisecond (the cost model's clock rate).
    pub instr_per_ms: u64,
    /// Record scalar field writes (profiling mode).
    pub record_field_values: bool,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Share decrypted fragments across VMs in this process (fleet
    /// simulations where many devices run the same protected app). Keyed by
    /// (blob id, blob content fingerprint, derived key), so a hit proves the
    /// same ciphertext was opened with the same key — per-VM cost charging
    /// and [`Telemetry`] are identical with the cache on or off.
    pub shared_fragment_cache: bool,
    /// Attacker instrumentation.
    pub hooks: AttackerHooks,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            fuel_per_event: 300_000,
            instr_per_ms: 2_000,
            record_field_values: false,
            max_call_depth: 64,
            shared_fragment_cache: false,
            hooks: AttackerHooks::default(),
        }
    }
}

/// Process-wide decrypted-fragment cache (see
/// [`VmOptions::shared_fragment_cache`]). The fingerprint covers salt and
/// ciphertext, so a tampered blob or a differently-salted protection of the
/// same app can never collide with a cached entry.
type SharedFragmentKey = (u32, bombdroid_crypto::Digest256, bombdroid_crypto::Key128);

fn shared_fragments() -> &'static Mutex<HashMap<SharedFragmentKey, Arc<Vec<Instr>>>> {
    static CACHE: OnceLock<Mutex<HashMap<SharedFragmentKey, Arc<Vec<Instr>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A runtime fault. Responses deliberately inject some of these into
/// repackaged apps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Null dereference.
    NullDeref,
    /// Operand had the wrong type.
    TypeError(&'static str),
    /// Integer division by zero.
    DivByZero,
    /// Array index out of bounds.
    IndexOutOfBounds,
    /// Call to a method that does not exist.
    UnknownMethod(MethodRef),
    /// Reflective call name did not resolve.
    UnknownReflectTarget(String),
    /// A `DecryptExec` failed to authenticate (wrong key or tampering).
    DecryptFailed,
    /// Decrypted bytes were not a valid fragment (tampered blob).
    FragmentDecode,
    /// Explicit `throw`.
    Thrown(String),
    /// Call depth exceeded.
    StackOverflow,
    /// Instruction budget exhausted (endless loop / freeze).
    OutOfFuel,
    /// The process was killed by a response.
    Killed,
    /// The app is frozen by a response.
    Frozen,
    /// Event index out of range or arity mismatch.
    BadEvent(String),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NullDeref => write!(f, "null dereference"),
            Fault::TypeError(what) => write!(f, "type error: {what}"),
            Fault::DivByZero => write!(f, "division by zero"),
            Fault::IndexOutOfBounds => write!(f, "array index out of bounds"),
            Fault::UnknownMethod(m) => write!(f, "unknown method {m}"),
            Fault::UnknownReflectTarget(n) => write!(f, "unknown reflection target {n:?}"),
            Fault::DecryptFailed => write!(f, "payload decryption failed"),
            Fault::FragmentDecode => write!(f, "decrypted fragment is malformed"),
            Fault::Thrown(m) => write!(f, "thrown: {m}"),
            Fault::StackOverflow => write!(f, "stack overflow"),
            Fault::OutOfFuel => write!(f, "event exceeded instruction budget"),
            Fault::Killed => write!(f, "process killed"),
            Fault::Frozen => write!(f, "app frozen"),
            Fault::BadEvent(m) => write!(f, "bad event: {m}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Outcome of firing one event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// `Ok(())` or the fault that ended the event.
    pub result: Result<(), Fault>,
    /// Instructions executed by this event.
    pub instr: u64,
}

impl EventOutcome {
    /// Whether the event ran to completion.
    pub fn completed(&self) -> bool {
        self.result.is_ok()
    }
}

enum Flow {
    Done,
    Returned(RtValue),
}

/// The virtual machine for one app process on one device.
#[derive(Debug)]
pub struct Vm {
    /// Installed package being executed. Shared: booting a second device
    /// for the same package is an [`Arc`] clone, not a bytecode copy.
    pub pkg: Arc<InstalledPackage>,
    /// Device environment.
    pub env: DeviceEnv,
    opts: VmOptions,
    rng: StdRng,
    statics: HashMap<String, RtValue>,
    objects: Vec<BTreeMap<Arc<str>, RtValue>>,
    arrays: Vec<Vec<RtValue>>,
    telemetry: Telemetry,
    blob_cache: HashMap<u32, Arc<Vec<Instr>>>,
    clock_ms: u64,
    instr_accum: u64,
    fuel: u64,
    killed: bool,
    frozen: bool,
}

impl Vm {
    /// Boots an app process for `pkg` on a device with environment `env`.
    ///
    /// Accepts the package by value or as an [`Arc`]; fleet callers booting
    /// many devices for one package should pass `Arc` clones.
    pub fn new(
        pkg: impl Into<Arc<InstalledPackage>>,
        env: DeviceEnv,
        seed: u64,
        opts: VmOptions,
    ) -> Self {
        let pkg = pkg.into();
        Vm {
            pkg,
            env,
            opts,
            rng: StdRng::seed_from_u64(seed),
            statics: HashMap::new(),
            objects: Vec::new(),
            arrays: Vec::new(),
            telemetry: Telemetry::new(),
            blob_cache: HashMap::new(),
            clock_ms: 0,
            instr_accum: 0,
            fuel: 0,
            killed: false,
            frozen: false,
        }
    }

    /// Convenience constructor with default options.
    pub fn boot(pkg: impl Into<Arc<InstalledPackage>>, env: DeviceEnv, seed: u64) -> Self {
        Vm::new(pkg, env, seed, VmOptions::default())
    }

    /// Telemetry recorded so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Consumes the VM and returns its telemetry.
    pub fn into_telemetry(self) -> Telemetry {
        self.telemetry
    }

    /// Publishes this VM's telemetry-derived metrics (instruction volume,
    /// decrypt success/failure, triggered bombs, responses) into the
    /// active `bombdroid-obs` recorder. Harness code calls this once per
    /// finished run; pairing `vm.instr_executed` with the harness's
    /// `vm.drive`/`vm.session` span yields instructions-per-second, and
    /// `vm.decrypt_failures` over `vm.decrypt_failures +
    /// vm.blobs_decrypted` is the decrypt-failure rate.
    pub fn publish_obs(&self) {
        if !bombdroid_obs::enabled() {
            return;
        }
        let t = &self.telemetry;
        bombdroid_obs::counter_add("vm.runs", 1);
        bombdroid_obs::counter_add("vm.instr_executed", t.instr_executed);
        bombdroid_obs::counter_add("vm.events_run", t.events_run);
        bombdroid_obs::counter_add("vm.blobs_decrypted", t.blobs_decrypted.len() as u64);
        bombdroid_obs::counter_add("vm.decrypt_failures", t.decrypt_failures);
        bombdroid_obs::counter_add("vm.bombs_triggered", t.markers.len() as u64);
        bombdroid_obs::counter_add("vm.responses", t.responses.len() as u64);
        bombdroid_obs::counter_add("vm.piracy_reports", t.piracy_reports);
    }

    /// Current virtual time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Whether a response killed the process.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Whether a response froze the app.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Advances idle time (user think-time between events).
    pub fn advance_ms(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// A sorted snapshot of all static fields — the app's observable state
    /// (used by differential corruption probes).
    pub fn statics_snapshot(&self) -> Vec<(String, String)> {
        let mut snap: Vec<(String, String)> = self
            .statics
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        snap.sort();
        snap
    }

    /// Executes a detached instruction fragment with a caller-supplied
    /// register file — the primitive behind *forced execution* and
    /// *slice execution* attacks (paper §2.1), where an analyst runs
    /// extracted code outside its original control flow.
    pub fn run_detached_fragment(
        &mut self,
        body: &[Instr],
        mut regs: Vec<RtValue>,
    ) -> Result<Option<RtValue>, Fault> {
        self.fuel = self.opts.fuel_per_event;
        let mref = MethodRef::new("<detached>", "fragment");
        match self.exec_body(&mref, body, &mut regs, 0)? {
            Flow::Returned(v) => Ok(Some(v)),
            Flow::Done => Ok(None),
        }
    }

    /// Fires entry point `index` with `args`.
    pub fn fire_entry(&mut self, index: usize, args: Vec<RtValue>) -> EventOutcome {
        let dex = self.pkg.dex.clone();
        let Some(entry) = dex.entry_points.get(index) else {
            return EventOutcome {
                result: Err(Fault::BadEvent(format!("no entry point {index}"))),
                instr: 0,
            };
        };
        self.fire_method(&entry.method.clone(), args)
    }

    /// Fires an arbitrary method as an event (also used by forced-execution
    /// attacks, which call internal methods directly).
    pub fn fire_method(&mut self, mref: &MethodRef, args: Vec<RtValue>) -> EventOutcome {
        if self.killed {
            return EventOutcome {
                result: Err(Fault::Killed),
                instr: 0,
            };
        }
        if self.frozen {
            return EventOutcome {
                result: Err(Fault::Frozen),
                instr: 0,
            };
        }
        self.fuel = self.opts.fuel_per_event;
        self.telemetry.events_run += 1;
        let before = self.telemetry.instr_executed;
        let result = self.call(mref, args, 0).map(|_| ());
        EventOutcome {
            instr: self.telemetry.instr_executed - before,
            result,
        }
    }

    fn charge(&mut self, cost: u64) -> Result<(), Fault> {
        self.telemetry.instr_executed += cost;
        self.instr_accum += cost;
        while self.instr_accum >= self.opts.instr_per_ms {
            self.instr_accum -= self.opts.instr_per_ms;
            self.clock_ms += 1;
        }
        if self.fuel < cost {
            self.fuel = 0;
            return Err(Fault::OutOfFuel);
        }
        self.fuel -= cost;
        Ok(())
    }

    fn call(
        &mut self,
        mref: &MethodRef,
        args: Vec<RtValue>,
        depth: usize,
    ) -> Result<RtValue, Fault> {
        if depth >= self.opts.max_call_depth {
            return Err(Fault::StackOverflow);
        }
        let dex = self.pkg.dex.clone();
        let method = self
            .pkg
            .resolve_method(mref)
            .map(|(ci, mi)| &dex.classes[ci].methods[mi])
            .ok_or_else(|| Fault::UnknownMethod(mref.clone()))?;
        if args.len() != method.params as usize {
            return Err(Fault::BadEvent(format!(
                "{mref}: expected {} args, got {}",
                method.params,
                args.len()
            )));
        }
        *self.telemetry.method_calls.entry(mref.clone()).or_insert(0) += 1;
        let mut regs = vec![RtValue::Null; method.registers.max(args.len() as u16) as usize];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a;
        }
        self.charge(5)?;
        match self.exec_body(mref, &method.body, &mut regs, depth)? {
            Flow::Returned(v) => Ok(v),
            Flow::Done => Ok(RtValue::Null),
        }
    }

    fn reg(&self, regs: &[RtValue], r: Reg) -> RtValue {
        regs.get(r.0 as usize).cloned().unwrap_or(RtValue::Null)
    }

    fn set_reg(regs: &mut Vec<RtValue>, r: Reg, v: RtValue) {
        let idx = r.0 as usize;
        if idx >= regs.len() {
            regs.resize(idx + 1, RtValue::Null);
        }
        regs[idx] = v;
    }

    fn exec_body(
        &mut self,
        mref: &MethodRef,
        body: &[Instr],
        regs: &mut Vec<RtValue>,
        depth: usize,
    ) -> Result<Flow, Fault> {
        let mut pc = 0usize;
        while pc < body.len() {
            let instr = &body[pc];
            let mut next = pc + 1;
            match instr {
                Instr::Const { dst, value } => {
                    self.charge(1)?;
                    Self::set_reg(regs, *dst, value.clone().into());
                }
                Instr::Move { dst, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    Self::set_reg(regs, *dst, v);
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *lhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    let b = self
                        .reg(regs, *rhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop rhs not int"))?;
                    Self::set_reg(regs, *dst, RtValue::Int(Self::arith(*op, a, b)?));
                }
                Instr::BinOpConst { op, dst, lhs, rhs } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *lhs)
                        .as_int()
                        .ok_or(Fault::TypeError("binop lhs not int"))?;
                    Self::set_reg(regs, *dst, RtValue::Int(Self::arith(*op, a, *rhs)?));
                }
                Instr::UnOp { op, dst, src } => {
                    self.charge(1)?;
                    let a = self
                        .reg(regs, *src)
                        .as_int()
                        .ok_or(Fault::TypeError("unop operand not int"))?;
                    let v = match op {
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::Not => !a,
                        UnOp::Abs => a.wrapping_abs(),
                    };
                    Self::set_reg(regs, *dst, RtValue::Int(v));
                }
                Instr::StrOp { op, dst, lhs, rhs } => {
                    self.charge(2)?;
                    let v = self.str_op(*op, regs, *lhs, *rhs)?;
                    Self::set_reg(regs, *dst, v);
                }
                Instr::If {
                    cond,
                    lhs,
                    rhs,
                    target,
                } => {
                    self.charge(1)?;
                    let a = self.reg(regs, *lhs);
                    let b = match rhs {
                        RegOrConst::Reg(r) => self.reg(regs, *r),
                        RegOrConst::Const(v) => v.clone().into(),
                    };
                    let taken = Self::compare(*cond, &a, &b)?;
                    // QC-coverage telemetry: an equality on a constant that
                    // held. (`Eq` taken, or `Ne` fall-through.)
                    let eq_held = match cond {
                        CondOp::Eq => taken,
                        CondOp::Ne => !taken,
                        _ => false,
                    };
                    if eq_held && matches!(rhs, RegOrConst::Const(_)) {
                        self.telemetry.eq_satisfied.insert((mref.clone(), pc));
                        if matches!(a, RtValue::Bytes(_)) {
                            self.telemetry.outer_satisfied.insert((mref.clone(), pc));
                        }
                    }
                    if taken {
                        next = *target;
                    }
                }
                Instr::Switch { src, arms, default } => {
                    self.charge(1)?;
                    let v = self
                        .reg(regs, *src)
                        .as_int()
                        .ok_or(Fault::TypeError("switch operand not int"))?;
                    next = arms
                        .iter()
                        .find(|(case, _)| *case == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                }
                Instr::Goto { target } => {
                    self.charge(1)?;
                    next = *target;
                }
                Instr::Invoke { method, args, dst } => {
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.call(method, argv, depth + 1)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::InvokeReflect { name, args, dst } => {
                    self.charge(10)?;
                    let target = self
                        .reg(regs, *name)
                        .as_str()
                        .ok_or(Fault::TypeError("reflect name not string"))?
                        .to_string();
                    if self.opts.hooks.trace_reflection {
                        let at = self.clock_ms;
                        self.telemetry.reflection_trace.push((target.clone(), at));
                    }
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.reflect_call(&target, &argv)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::HostCall { api, args, dst } => {
                    self.charge(10)?;
                    let argv: Vec<RtValue> = args.iter().map(|r| self.reg(regs, *r)).collect();
                    let ret = self.host_call(api, &argv)?;
                    if let Some(d) = dst {
                        Self::set_reg(regs, *d, ret);
                    }
                }
                Instr::GetField { dst, obj, field } => {
                    self.charge(1)?;
                    let v = match self.reg(regs, *obj) {
                        RtValue::Obj(id) => self
                            .objects
                            .get(id)
                            .and_then(|o| o.get(&field.name).cloned())
                            .unwrap_or(RtValue::Null),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iget on non-object")),
                    };
                    Self::set_reg(regs, *dst, v);
                }
                Instr::PutField { obj, field, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field(field.to_string(), at, c);
                        }
                    }
                    match self.reg(regs, *obj) {
                        RtValue::Obj(id) => {
                            let o = self
                                .objects
                                .get_mut(id)
                                .ok_or(Fault::TypeError("dangling object"))?;
                            o.insert(field.name.clone(), v);
                        }
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("iput on non-object")),
                    }
                }
                Instr::GetStatic { dst, field } => {
                    self.charge(1)?;
                    // Unwritten statics read as 0, matching Java's default
                    // initialization of numeric static fields.
                    let v = self
                        .statics
                        .get(&field.to_string())
                        .cloned()
                        .unwrap_or(RtValue::Int(0));
                    Self::set_reg(regs, *dst, v);
                }
                Instr::PutStatic { field, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    if self.opts.record_field_values {
                        if let Some(c) = v.to_const() {
                            let at = self.clock_ms;
                            self.telemetry.record_field(field.to_string(), at, c);
                        }
                    }
                    self.statics.insert(field.to_string(), v);
                }
                Instr::NewInstance { dst, class: _ } => {
                    self.charge(2)?;
                    let id = self.objects.len();
                    self.objects.push(BTreeMap::new());
                    Self::set_reg(regs, *dst, RtValue::Obj(id));
                }
                Instr::NewArray { dst, len } => {
                    self.charge(2)?;
                    let n = self
                        .reg(regs, *len)
                        .as_int()
                        .ok_or(Fault::TypeError("array length not int"))?;
                    if !(0..=1_000_000).contains(&n) {
                        return Err(Fault::IndexOutOfBounds);
                    }
                    let id = self.arrays.len();
                    self.arrays.push(vec![RtValue::Int(0); n as usize]);
                    Self::set_reg(regs, *dst, RtValue::Arr(id));
                }
                Instr::ArrayGet { dst, arr, idx } => {
                    self.charge(1)?;
                    let v = self.array_slot(regs, *arr, *idx)?.clone();
                    Self::set_reg(regs, *dst, v);
                }
                Instr::ArrayPut { arr, idx, src } => {
                    self.charge(1)?;
                    let v = self.reg(regs, *src);
                    *self.array_slot(regs, *arr, *idx)? = v;
                }
                Instr::ArrayLen { dst, arr } => {
                    self.charge(1)?;
                    let n = match self.reg(regs, *arr) {
                        RtValue::Arr(id) => self
                            .arrays
                            .get(id)
                            .ok_or(Fault::TypeError("dangling array"))?
                            .len(),
                        RtValue::Null => return Err(Fault::NullDeref),
                        _ => return Err(Fault::TypeError("array-length on non-array")),
                    };
                    Self::set_reg(regs, *dst, RtValue::Int(n as i64));
                }
                Instr::Hash { dst, src, salt } => {
                    // Hashing ≤ 16 input bytes is a handful of SHA-1
                    // compressions — cheap next to interpreter dispatch.
                    self.charge(4)?;
                    let cb = self
                        .reg(regs, *src)
                        .canonical_bytes()
                        .ok_or(Fault::TypeError("hash of reference value"))?;
                    let digest = kdf::condition_hash(&cb, salt);
                    Self::set_reg(regs, *dst, RtValue::Bytes(Arc::from(&digest[..])));
                }
                Instr::DecryptExec { blob, key_src } => {
                    let cached = self.blob_cache.get(&blob.0).cloned();
                    let fragment = if let Some(f) = cached {
                        // "the code decryption is one-time effort by
                        // caching it in memory" (§8.4).
                        self.charge(2)?;
                        f
                    } else {
                        let dex = self.pkg.dex.clone();
                        let b = dex.blob(*blob).ok_or(Fault::TypeError("dangling blob"))?;
                        self.charge(50 + b.sealed.len() as u64 / 16)?;
                        let cb = self
                            .reg(regs, *key_src)
                            .canonical_bytes()
                            .ok_or(Fault::TypeError("key source is a reference"))?;
                        let key = kdf::derive_key(&cb, &b.salt);
                        // With the process-wide cache on, look up (id,
                        // fingerprint, key) before doing the real open: a
                        // hit proves an identical decryption already
                        // succeeded, so only the redundant crypto is
                        // skipped — the cost was charged above and the
                        // telemetry below records the decrypt either way.
                        let shared_key = self.opts.shared_fragment_cache.then(|| {
                            let mut fp = bombdroid_crypto::sha256::Sha256::new();
                            fp.update(&b.salt);
                            fp.update(&b.sealed);
                            (blob.0, fp.finalize(), key)
                        });
                        let shared_hit = shared_key.as_ref().and_then(|k| {
                            shared_fragments()
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get(k)
                                .cloned()
                        });
                        let f = match shared_hit {
                            Some(f) => f,
                            None => {
                                let plaintext = blob::open(&key, &b.sealed).map_err(|_| {
                                    self.telemetry.decrypt_failures += 1;
                                    Fault::DecryptFailed
                                })?;
                                let instrs = wire::decode_fragment(&plaintext)
                                    .map_err(|_| Fault::FragmentDecode)?;
                                let f = Arc::new(instrs);
                                if let Some(k) = shared_key {
                                    shared_fragments()
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .insert(k, f.clone());
                                }
                                f
                            }
                        };
                        self.blob_cache.insert(blob.0, f.clone());
                        self.telemetry.blobs_decrypted.insert(blob.0);
                        f
                    };
                    if let Flow::Returned(v) = self.exec_body(mref, &fragment, regs, depth)? {
                        return Ok(Flow::Returned(v));
                    }
                }
                Instr::StegoExtract { dst, src } => {
                    self.charge(5)?;
                    let v = match self.reg(regs, *src).as_str() {
                        Some(cover) => match bombdroid_apk::stego::extract(cover) {
                            Some(bytes) => RtValue::Bytes(Arc::from(bytes.as_slice())),
                            None => RtValue::Null,
                        },
                        None => RtValue::Null,
                    };
                    Self::set_reg(regs, *dst, v);
                }
                Instr::Return { src } => {
                    self.charge(1)?;
                    let v = src.map(|r| self.reg(regs, r)).unwrap_or(RtValue::Null);
                    return Ok(Flow::Returned(v));
                }
                Instr::Throw { msg } => {
                    self.charge(1)?;
                    return Err(Fault::Thrown(msg.clone()));
                }
                Instr::Nop => {
                    self.charge(1)?;
                }
            }
            pc = next;
        }
        Ok(Flow::Done)
    }

    fn arith(op: BinOp, a: i64, b: i64) -> Result<i64, Fault> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(Fault::DivByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(Fault::DivByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }

    fn compare(cond: CondOp, a: &RtValue, b: &RtValue) -> Result<bool, Fault> {
        match cond {
            CondOp::Eq | CondOp::Ne => {
                let equal = match (a, b) {
                    (RtValue::Int(_) | RtValue::Bool(_), RtValue::Int(_) | RtValue::Bool(_)) => {
                        a.as_int() == b.as_int()
                    }
                    (RtValue::Str(x), RtValue::Str(y)) => x == y,
                    (RtValue::Bytes(x), RtValue::Bytes(y)) => x == y,
                    (RtValue::Null, RtValue::Null) => true,
                    (RtValue::Obj(x), RtValue::Obj(y)) => x == y,
                    (RtValue::Arr(x), RtValue::Arr(y)) => x == y,
                    _ => false,
                };
                Ok(if cond == CondOp::Eq { equal } else { !equal })
            }
            _ => {
                let x = a
                    .as_int()
                    .ok_or(Fault::TypeError("ordered compare on non-int"))?;
                let y = b
                    .as_int()
                    .ok_or(Fault::TypeError("ordered compare on non-int"))?;
                Ok(match cond {
                    CondOp::Lt => x < y,
                    CondOp::Le => x <= y,
                    CondOp::Gt => x > y,
                    CondOp::Ge => x >= y,
                    CondOp::Eq | CondOp::Ne => unreachable!(),
                })
            }
        }
    }

    fn str_op(
        &mut self,
        op: StrOp,
        regs: &[RtValue],
        lhs: Reg,
        rhs: Option<Reg>,
    ) -> Result<RtValue, Fault> {
        let a = self.reg(regs, lhs);
        let s = a
            .as_str()
            .ok_or(Fault::TypeError("strop receiver not string"))?;
        let rhs_val = rhs.map(|r| self.reg(regs, r));
        let b_str = |v: &Option<RtValue>| -> Result<String, Fault> {
            match v {
                Some(RtValue::Str(s)) => Ok(s.to_string()),
                Some(RtValue::Int(i)) => Ok(i.to_string()),
                Some(RtValue::Bool(b)) => Ok(b.to_string()),
                _ => Err(Fault::TypeError("strop operand missing or non-scalar")),
            }
        };
        Ok(match op {
            StrOp::Equals => RtValue::Bool(s == b_str(&rhs_val)?),
            StrOp::StartsWith => RtValue::Bool(s.starts_with(&b_str(&rhs_val)?)),
            StrOp::EndsWith => RtValue::Bool(s.ends_with(&b_str(&rhs_val)?)),
            StrOp::Contains => RtValue::Bool(s.contains(&b_str(&rhs_val)?)),
            StrOp::Concat => RtValue::Str(Arc::from(format!("{s}{}", b_str(&rhs_val)?))),
            StrOp::Length => RtValue::Int(s.chars().count() as i64),
            StrOp::HashCode => {
                // Java's String.hashCode.
                let mut h: i32 = 0;
                for c in s.chars() {
                    h = h.wrapping_mul(31).wrapping_add(c as i32);
                }
                RtValue::Int(h as i64)
            }
            StrOp::CharAt => {
                let idx = rhs_val
                    .as_ref()
                    .and_then(|v| v.as_int())
                    .ok_or(Fault::TypeError("charAt index not int"))?;
                let c = s
                    .chars()
                    .nth(usize::try_from(idx).map_err(|_| Fault::IndexOutOfBounds)?)
                    .ok_or(Fault::IndexOutOfBounds)?;
                RtValue::Int(c as i64)
            }
            StrOp::ToUpper => RtValue::Str(Arc::from(s.to_uppercase())),
            StrOp::Rot13 => {
                let rotated: String = s
                    .chars()
                    .map(|c| match c {
                        'a'..='z' => (((c as u8 - b'a' + 13) % 26) + b'a') as char,
                        'A'..='Z' => (((c as u8 - b'A' + 13) % 26) + b'A') as char,
                        other => other,
                    })
                    .collect();
                RtValue::Str(Arc::from(rotated))
            }
            StrOp::Substring => {
                let idx = rhs_val
                    .as_ref()
                    .and_then(|v| v.as_int())
                    .ok_or(Fault::TypeError("substring index not int"))?;
                let idx = usize::try_from(idx).map_err(|_| Fault::IndexOutOfBounds)?;
                if idx > s.chars().count() {
                    return Err(Fault::IndexOutOfBounds);
                }
                RtValue::Str(Arc::from(s.chars().skip(idx).collect::<String>()))
            }
        })
    }

    fn array_slot(&mut self, regs: &[RtValue], arr: Reg, idx: Reg) -> Result<&mut RtValue, Fault> {
        let id = match self.reg(regs, arr) {
            RtValue::Arr(id) => id,
            RtValue::Null => return Err(Fault::NullDeref),
            _ => return Err(Fault::TypeError("array op on non-array")),
        };
        let i = self
            .reg(regs, idx)
            .as_int()
            .ok_or(Fault::TypeError("array index not int"))?;
        let a = self
            .arrays
            .get_mut(id)
            .ok_or(Fault::TypeError("dangling array"))?;
        let i = usize::try_from(i).map_err(|_| Fault::IndexOutOfBounds)?;
        a.get_mut(i).ok_or(Fault::IndexOutOfBounds)
    }

    fn reflect_call(&mut self, name: &str, args: &[RtValue]) -> Result<RtValue, Fault> {
        match name {
            "getPublicKey" => self.host_call(&HostApi::GetPublicKey, args),
            "getManifestDigest" => self.host_call(&HostApi::GetManifestDigest, args),
            "codeDigest" => self.host_call(&HostApi::CodeDigest, args),
            "uptimeMillis" => self.host_call(&HostApi::TimeMillis, args),
            other => Err(Fault::UnknownReflectTarget(other.to_string())),
        }
    }

    fn host_call(&mut self, api: &HostApi, args: &[RtValue]) -> Result<RtValue, Fault> {
        match api {
            HostApi::GetPublicKey => {
                if let Some(fake) = &self.opts.hooks.fake_public_key {
                    return Ok(RtValue::Bytes(Arc::from(fake.as_slice())));
                }
                Ok(RtValue::Bytes(Arc::from(
                    self.pkg.cert_public_key.as_slice(),
                )))
            }
            HostApi::GetManifestDigest => {
                let entry = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("manifest entry name not string"))?;
                Ok(match self.pkg.manifest_digests.get(entry) {
                    Some(d) => RtValue::Bytes(Arc::from(&d[..])),
                    None => RtValue::Null,
                })
            }
            HostApi::GetResourceString => {
                let key = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("resource key not string"))?;
                Ok(match self.pkg.resources.get(key) {
                    Some(s) => RtValue::Str(Arc::from(s.as_str())),
                    None => RtValue::Null,
                })
            }
            HostApi::CodeDigest => {
                let class = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or(Fault::TypeError("class name not string"))?;
                Ok(match self.pkg.class_digest(class) {
                    Some(d) => RtValue::Bytes(Arc::from(&d[..])),
                    None => RtValue::Null,
                })
            }
            HostApi::EnvQuery(key) => Ok(match self.env.query(*key) {
                EnvValue::Str(s) => RtValue::Str(Arc::from(s.as_str())),
                EnvValue::Int(i) => RtValue::Int(i),
            }),
            HostApi::Sensor(kind) => {
                let v = self.env.sensor_sample(*kind, &mut self.rng);
                Ok(RtValue::Int(v))
            }
            HostApi::TimeMillis => Ok(RtValue::Int(self.clock_ms as i64)),
            HostApi::WallClockMinute => {
                let minute = (self.env.start_minute as u64 + self.clock_ms / 60_000) % 1_440;
                Ok(RtValue::Int(minute as i64))
            }
            HostApi::Random => {
                if let Some(forced) = self.opts.hooks.force_random {
                    return Ok(RtValue::Int(forced));
                }
                let bound = args.first().and_then(|v| v.as_int()).unwrap_or(i64::MAX);
                if bound <= 0 {
                    return Ok(RtValue::Int(0));
                }
                Ok(RtValue::Int(self.rng.gen_range(0..bound)))
            }
            HostApi::Log => {
                let line: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                self.telemetry.logs.push(line.join(" "));
                Ok(RtValue::Null)
            }
            HostApi::UiNotify(kind) => {
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::UserWarned,
                    at_ms: at,
                });
                let _ = kind;
                Ok(RtValue::Null)
            }
            HostApi::ReportPiracy => {
                self.telemetry.piracy_reports += 1;
                Ok(RtValue::Null)
            }
            HostApi::LeakMemory => {
                self.telemetry.leaked_bytes += 1 << 20;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::MemoryLeaked,
                    at_ms: at,
                });
                Ok(RtValue::Null)
            }
            HostApi::KillProcess => {
                self.killed = true;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::Killed,
                    at_ms: at,
                });
                Err(Fault::Killed)
            }
            HostApi::Freeze => {
                self.frozen = true;
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::Frozen,
                    at_ms: at,
                });
                // A frozen app burns its whole event budget spinning.
                self.clock_ms += self.fuel / self.opts.instr_per_ms;
                self.fuel = 0;
                Err(Fault::Frozen)
            }
            HostApi::NullOutField => {
                for v in self.statics.values_mut() {
                    *v = RtValue::Null;
                }
                let at = self.clock_ms;
                self.telemetry.responses.push(ResponseEvent {
                    kind: ResponseKind::FieldNulled,
                    at_ms: at,
                });
                Ok(RtValue::Null)
            }
            HostApi::SleepMs => {
                let ms = args.first().and_then(|v| v.as_int()).unwrap_or(0).max(0);
                self.clock_ms += ms as u64;
                Ok(RtValue::Null)
            }
            HostApi::Marker(id) => {
                if self.telemetry.markers.insert(*id) && self.telemetry.first_marker_ms.is_none() {
                    self.telemetry.first_marker_ms = Some(self.clock_ms);
                }
                Ok(RtValue::Null)
            }
        }
    }
}
