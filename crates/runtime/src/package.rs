//! Installed packages: what the Android system snapshots at install time.
//!
//! Once installed, the certificate and manifest "cannot be modified by app
//! processes" (paper §2.1, §4.1) — so detection payloads query *this*
//! structure, not the APK the attacker ships.

use bombdroid_apk::{ApkFile, VerifyError};
use bombdroid_crypto::Digest256;
use bombdroid_dex::{wire, DexFile, MethodRef};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

/// A package as installed on a device.
#[derive(Debug, Clone)]
pub struct InstalledPackage {
    /// The app's code, as installed. Shared with the source [`ApkFile`]
    /// (installation never copies the bytecode).
    pub dex: Arc<DexFile>,
    /// Public key bytes from the verified certificate (`Kr` in §4.1).
    pub cert_public_key: Vec<u8>,
    /// `MANIFEST.MF` digests, system-managed.
    pub manifest_digests: BTreeMap<String, Digest256>,
    /// Per-class code digests of the installed bytecode, computed on first
    /// query (the system hashes lazily; most installs never scan code).
    class_digests: OnceLock<BTreeMap<String, Digest256>>,
    /// `MethodRef -> (class index, method index)` dispatch table, built on
    /// first query and shared by every VM booting this package.
    method_index: OnceLock<HashMap<MethodRef, (usize, usize)>>,
    /// Pre-decoded execution program (flat `DecodedOp` bodies), built on
    /// first boot of a decoded-engine VM and shared by every session and
    /// fork of this package.
    decoded: OnceLock<Arc<crate::decode::DecodedProgram>>,
    /// String resources (`strings.xml`), readable by the app.
    pub resources: BTreeMap<String, String>,
    /// Package name.
    pub package_name: String,
}

impl InstalledPackage {
    /// Installs an APK: verifies the signature (the system rejects
    /// unsigned/tampered APKs), then snapshots certificate and manifest
    /// digests. Per-class code digests are materialized lazily on first
    /// [`class_digest`](Self::class_digest) query.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the APK's signature does not verify —
    /// such an APK never reaches a device.
    pub fn install(apk: &ApkFile) -> Result<Self, VerifyError> {
        // One manifest computation serves both the signature check and the
        // digest snapshot.
        let manifest = apk.manifest();
        apk.verify_with(&manifest)?;
        let manifest_digests = manifest
            .iter()
            .map(|(name, digest)| (name.to_string(), *digest))
            .collect();
        let resources = apk
            .strings
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Ok(InstalledPackage {
            dex: Arc::clone(&apk.dex),
            cert_public_key: apk.cert.public_key.to_bytes().to_vec(),
            manifest_digests,
            class_digests: OnceLock::new(),
            method_index: OnceLock::new(),
            decoded: OnceLock::new(),
            resources,
            package_name: apk.meta.package.clone(),
        })
    }

    /// Per-class code digests of the installed bytecode (for code-snippet
    /// scanning), computed once on first access.
    pub fn class_digests(&self) -> &BTreeMap<String, Digest256> {
        self.class_digests.get_or_init(|| {
            self.dex
                .classes
                .iter()
                .map(|c| (c.name.as_str().to_string(), wire::class_digest(c)))
                .collect()
        })
    }

    /// The installed code digest of one class, if it exists.
    pub fn class_digest(&self, class: &str) -> Option<&Digest256> {
        self.class_digests().get(class)
    }

    /// O(1) method lookup, resolving exactly like the linear
    /// [`DexFile::method`] scan: a duplicate class name shadows later
    /// declarations entirely; within a class the first method of a name
    /// wins. Built once, shared by every VM booting this package.
    pub fn resolve_method(&self, mref: &MethodRef) -> Option<(usize, usize)> {
        let index = self.method_index.get_or_init(|| {
            let mut index = HashMap::new();
            let mut seen_classes = HashSet::new();
            for (ci, class) in self.dex.classes.iter().enumerate() {
                if !seen_classes.insert(class.name.clone()) {
                    continue;
                }
                for (mi, method) in class.methods.iter().enumerate() {
                    index.entry(method.method_ref()).or_insert((ci, mi));
                }
            }
            index
        });
        index.get(mref).copied()
    }

    /// The package's pre-decoded program, lowered once on first access and
    /// shared (method bodies themselves decode lazily inside it).
    ///
    /// Programs are additionally shared *across* installs of the same
    /// `Arc<DexFile>` through a process-wide registry: re-installing an
    /// unchanged app (every protect pass installs the original APK to
    /// profile it) reuses the existing program — and the method bodies
    /// already decoded inside it — instead of re-lowering from scratch.
    pub(crate) fn decoded_program(&self) -> Arc<crate::decode::DecodedProgram> {
        Arc::clone(
            self.decoded
                .get_or_init(|| shared_decoded_program(&self.dex, self)),
        )
    }
}

/// Process-wide decoded-program registry, keyed by `Arc<DexFile>` identity.
///
/// The key is the allocation address; a stored [`Weak`] guards against
/// address reuse (a dead weak can never be upgraded, so a recycled address
/// is a miss, never a wrong hit). The lock is held across a build, which
/// single-flights concurrent first boots of the same package.
static DECODED_REGISTRY: Mutex<
    Vec<(std::sync::Weak<DexFile>, Arc<crate::decode::DecodedProgram>)>,
> = Mutex::new(Vec::new());

/// Registry capacity: far above any realistic number of simultaneously
/// live distinct apps; a sweep keeps dead entries from accumulating.
const DECODED_REGISTRY_CAP: usize = 256;

fn shared_decoded_program(
    dex: &Arc<DexFile>,
    pkg: &InstalledPackage,
) -> Arc<crate::decode::DecodedProgram> {
    let mut reg = DECODED_REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    reg.retain(|(weak, _)| weak.strong_count() > 0);
    for (weak, prog) in reg.iter() {
        if let Some(live) = weak.upgrade() {
            if Arc::ptr_eq(&live, dex) {
                return Arc::clone(prog);
            }
        }
    }
    let prog = Arc::new(crate::decode::DecodedProgram::build(pkg));
    if reg.len() < DECODED_REGISTRY_CAP {
        reg.push((Arc::downgrade(dex), Arc::clone(&prog)));
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::{package_app, repackage, AppMeta, DeveloperKey, StringsXml};
    use bombdroid_dex::{Class, MethodBuilder};
    use rand::{rngs::StdRng, SeedableRng};

    fn dex() -> DexFile {
        let mut dex = DexFile::new();
        let mut c = Class::new("Main");
        let mut b = MethodBuilder::new("Main", "run", 0);
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex
    }

    #[test]
    fn install_snapshots_cert_and_digests() {
        let mut rng = StdRng::seed_from_u64(5);
        let dev = DeveloperKey::generate(&mut rng);
        let mut strings = StringsXml::new();
        strings.set("app_name", "demo");
        let apk = package_app(&dex(), strings, AppMeta::named("demo"), &dev);
        let pkg = InstalledPackage::install(&apk).unwrap();
        assert_eq!(pkg.cert_public_key, dev.public.to_bytes().to_vec());
        assert!(pkg.manifest_digests.contains_key("classes.dex"));
        assert!(pkg.class_digests().contains_key("Main"));
        assert_eq!(
            pkg.resources.get("app_name").map(String::as_str),
            Some("demo")
        );
    }

    #[test]
    fn lazy_class_digests_match_eager_computation() {
        let mut rng = StdRng::seed_from_u64(5);
        let dev = DeveloperKey::generate(&mut rng);
        let apk = package_app(&dex(), StringsXml::new(), AppMeta::named("demo"), &dev);
        let pkg = InstalledPackage::install(&apk).unwrap();
        let expected = wire::class_digest(&apk.dex.classes[0]);
        assert_eq!(pkg.class_digest("Main"), Some(&expected));
        assert_eq!(pkg.class_digest("NoSuchClass"), None);
        // A clone taken before first access computes the same digests.
        let clone = pkg.clone();
        assert_eq!(clone.class_digest("Main"), Some(&expected));
    }

    #[test]
    fn repackaged_app_installs_with_different_key() {
        let mut rng = StdRng::seed_from_u64(6);
        let dev = DeveloperKey::generate(&mut rng);
        let pirate = DeveloperKey::generate(&mut rng);
        let apk = package_app(&dex(), StringsXml::new(), AppMeta::named("demo"), &dev);
        let repack = repackage(&apk, &pirate, |_| {});
        let original = InstalledPackage::install(&apk).unwrap();
        let pirated = InstalledPackage::install(&repack).unwrap();
        assert_ne!(original.cert_public_key, pirated.cert_public_key);
    }

    #[test]
    fn tampered_apk_rejected_at_install() {
        let mut rng = StdRng::seed_from_u64(7);
        let dev = DeveloperKey::generate(&mut rng);
        let mut apk = package_app(&dex(), StringsXml::new(), AppMeta::named("demo"), &dev);
        apk.meta.author = "pirate".into(); // modified without re-signing
        assert!(InstalledPackage::install(&apk).is_err());
    }
}
