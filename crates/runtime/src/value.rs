//! Runtime values: bytecode constants plus heap references.

use bombdroid_dex::Value;
use std::fmt;
use std::sync::Arc;

/// A value held in a VM register, field, or array slot.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RtValue {
    /// Null reference.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// String.
    Str(Arc<str>),
    /// Raw bytes (digests, keys).
    Bytes(Arc<[u8]>),
    /// Reference to a heap object.
    Obj(usize),
    /// Reference to a heap array.
    Arr(usize),
}

impl RtValue {
    /// Converts to the constant-value domain if this is not a reference.
    pub fn to_const(&self) -> Option<Value> {
        match self {
            RtValue::Null => Some(Value::Null),
            RtValue::Bool(b) => Some(Value::Bool(*b)),
            RtValue::Int(i) => Some(Value::Int(*i)),
            RtValue::Str(s) => Some(Value::Str(s.clone())),
            RtValue::Bytes(b) => Some(Value::Bytes(b.clone())),
            RtValue::Obj(_) | RtValue::Arr(_) => None,
        }
    }

    /// Canonical bytes for hashing/KDF; `None` for heap references.
    pub fn canonical_bytes(&self) -> Option<Vec<u8>> {
        self.to_const().map(|v| v.canonical_bytes())
    }

    /// Integer view (booleans coerce, as in Dalvik).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            RtValue::Int(i) => Some(*i),
            RtValue::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            RtValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short type name for fault messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            RtValue::Null => "null",
            RtValue::Bool(_) => "bool",
            RtValue::Int(_) => "int",
            RtValue::Str(_) => "string",
            RtValue::Bytes(_) => "bytes",
            RtValue::Obj(_) => "object",
            RtValue::Arr(_) => "array",
        }
    }
}

impl From<Value> for RtValue {
    fn from(v: Value) -> Self {
        match v {
            Value::Null => RtValue::Null,
            Value::Bool(b) => RtValue::Bool(b),
            Value::Int(i) => RtValue::Int(i),
            Value::Str(s) => RtValue::Str(s),
            Value::Bytes(b) => RtValue::Bytes(b),
        }
    }
}

impl From<i64> for RtValue {
    fn from(i: i64) -> Self {
        RtValue::Int(i)
    }
}

impl From<bool> for RtValue {
    fn from(b: bool) -> Self {
        RtValue::Bool(b)
    }
}

impl From<&str> for RtValue {
    fn from(s: &str) -> Self {
        RtValue::Str(Arc::from(s))
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Null => write!(f, "null"),
            RtValue::Bool(b) => write!(f, "{b}"),
            RtValue::Int(i) => write!(f, "{i}"),
            RtValue::Str(s) => write!(f, "{s:?}"),
            RtValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            RtValue::Obj(id) => write!(f, "obj@{id}"),
            RtValue::Arr(id) => write!(f, "arr@{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_conversion_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-9),
            Value::str("s"),
            Value::bytes([1, 2]),
        ] {
            let rt: RtValue = v.clone().into();
            assert_eq!(rt.to_const(), Some(v));
        }
        assert_eq!(RtValue::Obj(3).to_const(), None);
        assert_eq!(RtValue::Arr(3).canonical_bytes(), None);
    }

    #[test]
    fn int_coercion() {
        assert_eq!(RtValue::Bool(true).as_int(), Some(1));
        assert_eq!(RtValue::Int(5).as_int(), Some(5));
        assert_eq!(RtValue::Str(Arc::from("x")).as_int(), None);
    }
}
