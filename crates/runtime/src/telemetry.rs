//! Execution telemetry: what the measurement harness (and the paper's
//! Traceview-based profiling, §7.1) observes about a run.

use bombdroid_dex::{MethodRef, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on recorded samples per field, to bound memory in long profiles.
pub const FIELD_SAMPLE_CAP: usize = 8_192;

/// A user-visible or destructive response fired by a detection payload
/// (paper §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseKind {
    /// Process terminated.
    Killed,
    /// App frozen in an endless loop.
    Frozen,
    /// Large allocation leaked.
    MemoryLeaked,
    /// A reference field nulled out for a delayed crash.
    FieldNulled,
    /// The user was warned via UI.
    UserWarned,
}

/// One fired response, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseEvent {
    /// What fired.
    pub kind: ResponseKind,
    /// Virtual milliseconds since process start.
    pub at_ms: u64,
}

/// Everything recorded while a VM runs.
///
/// Derives `PartialEq`/`Eq` so suites can assert *bit-identity* between
/// runs — the telemetry-identity mode of `tests/behavior_preservation.rs`
/// diffs whole `Telemetry` values across execution engines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Instructions executed (the cost model's cycle count).
    pub instr_executed: u64,
    /// Events fired through entry points.
    pub events_run: u64,
    /// Per-method invocation counts (the Traceview analogue). A `BTreeMap`
    /// so profile reports and hot-method derivation iterate in a stable
    /// order regardless of hasher state.
    pub method_calls: BTreeMap<MethodRef, u64>,
    /// Obfuscated outer trigger conditions observed *satisfied*:
    /// `(method, pc)` of a hash-equality branch that evaluated true.
    pub outer_satisfied: BTreeSet<(MethodRef, usize)>,
    /// All equality conditions observed satisfied (QC coverage statistics).
    pub eq_satisfied: BTreeSet<(MethodRef, usize)>,
    /// Marker ids seen — the protector tags each bomb payload, so this is
    /// the set of *triggered* bombs.
    pub markers: BTreeSet<u32>,
    /// Virtual time when the first marker fired (time-to-first-bomb,
    /// Table 3).
    pub first_marker_ms: Option<u64>,
    /// Blobs successfully decrypted.
    pub blobs_decrypted: BTreeSet<u32>,
    /// Failed decryptions (wrong key / tampered blob) — what forced
    /// execution runs into.
    pub decrypt_failures: u64,
    /// Responses fired.
    pub responses: Vec<ResponseEvent>,
    /// Piracy reports sent to the developer.
    pub piracy_reports: u64,
    /// Log lines.
    pub logs: Vec<String>,
    /// Bytes leaked by `LeakMemory` responses.
    pub leaked_bytes: u64,
    /// Scalar values written to fields over time (profiling for artificial
    /// QC selection, §7.2, and Fig. 3); capped per field.
    pub field_values: BTreeMap<String, Vec<(u64, Value)>>,
    /// Reflection calls observed by an attacker hook (name, at_ms).
    pub reflection_trace: Vec<(String, u64)>,
}

impl Telemetry {
    /// Creates empty telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any detection response has fired.
    pub fn detection_fired(&self) -> bool {
        !self.responses.is_empty() || self.piracy_reports > 0
    }

    /// Number of distinct bombs triggered.
    pub fn bombs_triggered(&self) -> usize {
        self.markers.len()
    }

    /// Records a field write, respecting the per-field cap. Public so test
    /// fixtures and the protector's planner can synthesize profiles.
    pub fn record_field(&mut self, field: String, at_ms: u64, value: Value) {
        let samples = self.field_values.entry(field).or_default();
        if samples.len() < FIELD_SAMPLE_CAP {
            samples.push((at_ms, value));
        }
    }

    /// [`Self::record_field`] by reference: the key is only materialized on
    /// a field's first sample, so steady-state profiling (thousands of
    /// writes to a handful of fields) never allocates for the lookup.
    pub(crate) fn record_field_ref(&mut self, field: &str, at_ms: u64, value: Value) {
        match self.field_values.get_mut(field) {
            Some(samples) => {
                if samples.len() < FIELD_SAMPLE_CAP {
                    samples.push((at_ms, value));
                }
            }
            None => {
                self.field_values
                    .insert(field.to_string(), vec![(at_ms, value)]);
            }
        }
    }

    /// Hot methods: the `ratio` most-frequently-invoked methods (the paper
    /// excludes the top 10% from instrumentation, §7.1).
    pub fn hot_methods(&self, ratio: f64) -> Vec<MethodRef> {
        let mut counts: Vec<(&MethodRef, u64)> =
            self.method_calls.iter().map(|(m, c)| (m, *c)).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let take = ((counts.len() as f64) * ratio).floor() as usize;
        counts
            .into_iter()
            .take(take)
            .map(|(m, _)| m.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_methods_takes_top_ratio() {
        let mut t = Telemetry::new();
        for (name, count) in [("a", 100u64), ("b", 50), ("c", 10), ("d", 5), ("e", 1)] {
            t.method_calls.insert(MethodRef::new("C", name), count);
        }
        let hot = t.hot_methods(0.2);
        assert_eq!(hot.len(), 1);
        assert_eq!(&*hot[0].name, "a");
        let hot40 = t.hot_methods(0.4);
        assert_eq!(hot40.len(), 2);
    }

    #[test]
    fn method_calls_iterate_deterministically_sorted() {
        let mut t = Telemetry::new();
        for name in ["zed", "alpha", "mid", "beta"] {
            t.method_calls.insert(MethodRef::new("C", name), 1);
        }
        let names: Vec<String> = t.method_calls.keys().map(|m| m.name.to_string()).collect();
        assert_eq!(names, vec!["alpha", "beta", "mid", "zed"]);
    }

    #[test]
    fn field_cap_respected() {
        let mut t = Telemetry::new();
        for i in 0..(FIELD_SAMPLE_CAP + 100) {
            t.record_field("F.x".into(), i as u64, Value::Int(i as i64));
        }
        assert_eq!(t.field_values["F.x"].len(), FIELD_SAMPLE_CAP);
    }

    #[test]
    fn detection_fired_logic() {
        let mut t = Telemetry::new();
        assert!(!t.detection_fired());
        t.piracy_reports = 1;
        assert!(t.detection_fired());
    }
}
