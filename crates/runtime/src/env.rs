//! Device environments: the diversity axis BombDroid exploits.
//!
//! The paper's core observation (D1, §1) is that "the hardware/software
//! environments and sensor values are very diverse on the user side, while
//! the attacker can only afford ... a limited number of environments".
//! [`DeviceEnv::sample`] draws devices from population distributions
//! modelled on the Android Dashboards / AppBrain statistics the paper cites
//! (§7.3); [`DeviceEnv::attacker_lab`] yields the handful of emulator-like
//! configurations an attacker tests on.

use bombdroid_dex::{EnvKey, SensorKind};
use rand::Rng;
use std::collections::BTreeMap;

/// A concrete device/user environment.
///
/// String-valued properties live in `strings`, numeric ones in `ints`;
/// sensors have a base value that jitters per query (see
/// [`DeviceEnv::sensor_sample`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEnv {
    strings: BTreeMap<EnvKey, String>,
    ints: BTreeMap<EnvKey, i64>,
    sensors: BTreeMap<SensorKind, i64>,
    /// Minute-of-day at which the app process starts on this device.
    pub start_minute: u32,
}

/// A `(value, weight)` population table with weighted sampling — the
/// shared sampling primitive the population layers build on. The device
/// tables below are instances; `bombdroid-corpus` adds behavioral ones
/// (user archetypes, category mix) on top of the same type.
#[derive(Debug, Clone, Copy)]
pub struct WeightedTable<T: Copy + 'static> {
    entries: &'static [(T, u32)],
}

impl<T: Copy + 'static> WeightedTable<T> {
    /// Wraps a static `(value, weight)` slice.
    pub const fn new(entries: &'static [(T, u32)]) -> Self {
        WeightedTable { entries }
    }

    /// The underlying `(value, weight)` entries.
    pub fn entries(&self) -> &'static [(T, u32)] {
        self.entries
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> u32 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Draws an entry index with probability proportional to its weight.
    pub fn pick_index(&self, rng: &mut impl Rng) -> usize {
        let mut roll = rng.gen_range(0..self.total_weight());
        for (i, (_, weight)) in self.entries.iter().enumerate() {
            if roll < *weight {
                return i;
            }
            roll -= weight;
        }
        self.entries.len() - 1
    }

    /// Draws a value with probability proportional to its weight.
    pub fn pick(&self, rng: &mut impl Rng) -> T {
        self.entries[self.pick_index(rng)].0
    }

    /// The value at `index` (panics out of range, like slice indexing).
    pub fn value(&self, index: usize) -> T {
        self.entries[index].0
    }

    /// The population probability of the entries matching `pred` — the
    /// closed-form side of trigger-probability predictions.
    pub fn prob_of(&self, pred: impl Fn(&T) -> bool) -> f64 {
        let hit: u32 = self
            .entries
            .iter()
            .filter(|(v, _)| pred(v))
            .map(|(_, w)| w)
            .sum();
        hit as f64 / self.total_weight() as f64
    }
}

/// Manufacturer market shares (AppBrain-style).
pub const MANUFACTURERS: WeightedTable<&str> = WeightedTable::new(&[
    ("samsung", 30),
    ("xiaomi", 13),
    ("huawei", 10),
    ("oppo", 9),
    ("vivo", 8),
    ("motorola", 5),
    ("lge", 4),
    ("oneplus", 3),
    ("google", 3),
    ("sony", 2),
    ("htc", 2),
    ("asus", 2),
    ("lenovo", 2),
    ("zte", 1),
    ("tcl", 1),
    ("realme", 5),
]);

/// SDK level distribution (Android Dashboards-style).
pub const SDK_LEVELS: WeightedTable<i64> = WeightedTable::new(&[
    (19, 2),
    (21, 3),
    (22, 4),
    (23, 8),
    (24, 8),
    (25, 7),
    (26, 10),
    (27, 12),
    (28, 16),
    (29, 14),
    (30, 10),
    (31, 6),
]);

/// Display density distribution.
pub const DENSITIES: WeightedTable<i64> = WeightedTable::new(&[
    (120, 2),
    (160, 8),
    (240, 18),
    (320, 35),
    (480, 27),
    (640, 10),
]);

/// CPU ABI distribution.
pub const CPU_ABIS: WeightedTable<&str> = WeightedTable::new(&[
    ("arm64-v8a", 75),
    ("armeabi-v7a", 18),
    ("x86_64", 5),
    ("x86", 2),
]);

/// Flash size distribution (GB).
pub const FLASH_GB: WeightedTable<i64> =
    WeightedTable::new(&[(8, 5), (16, 15), (32, 30), (64, 28), (128, 16), (256, 6)]);

/// IP-geography country mix.
pub const COUNTRIES: WeightedTable<&str> = WeightedTable::new(&[
    ("US", 14),
    ("IN", 18),
    ("BR", 8),
    ("ID", 7),
    ("CN", 10),
    ("RU", 5),
    ("MX", 4),
    ("DE", 4),
    ("JP", 4),
    ("GB", 3),
    ("FR", 3),
    ("TR", 3),
    ("VN", 3),
    ("KR", 2),
    ("ES", 2),
    ("IT", 2),
    ("NG", 2),
    ("EG", 2),
    ("PK", 2),
    ("TH", 2),
]);

/// Locale language mix.
pub const LANGUAGES: WeightedTable<&str> = WeightedTable::new(&[
    ("en", 30),
    ("hi", 8),
    ("pt", 8),
    ("id", 7),
    ("zh", 10),
    ("ru", 5),
    ("es", 9),
    ("de", 4),
    ("ja", 4),
    ("fr", 4),
    ("tr", 3),
    ("vi", 3),
    ("ko", 2),
    ("ar", 3),
]);

/// Timezone offsets (minutes) a device may report; drawn uniformly.
const TZ_OFFSETS: [i64; 13] = [
    -480, -420, -300, -240, -180, 0, 60, 120, 180, 330, 420, 480, 540,
];

/// A compact device drawn from the population distributions: every axis a
/// [`DeviceEnv`] carries, packed into a few dozen bytes (table indices and
/// narrow integers instead of maps and strings). Population-scale
/// simulators hold millions of these — or none at all, re-deriving each
/// from its seed — and call [`DeviceProfile::materialize`] only for the
/// device whose session is about to run, so resident per-device state is
/// O(bytes), not O(session).
///
/// `DeviceProfile::sample` consumes the RNG stream exactly like the
/// historical `DeviceEnv::sample` (which now delegates here), so seeded
/// populations are bit-compatible across the refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Index into [`MANUFACTURERS`].
    pub manufacturer: u8,
    /// Board variant suffix (1..9).
    pub board: u8,
    /// Bootloader version major (1..6).
    pub blv_major: u8,
    /// Bootloader version minor (0..100).
    pub blv_minor: u8,
    /// Index into [`CPU_ABIS`].
    pub cpu_abi: u8,
    /// Index into [`COUNTRIES`].
    pub country: u8,
    /// Index into [`LANGUAGES`].
    pub language: u8,
    /// Display density in dpi.
    pub density_dpi: i16,
    /// MAC address hash (24-bit).
    pub mac_hash: u32,
    /// Serial number hash (24-bit).
    pub serial_hash: u32,
    /// Flash size in GB.
    pub flash_gb: i16,
    /// Android SDK level.
    pub sdk: u8,
    /// Third IP octet.
    pub ip_c: u8,
    /// Fourth IP octet.
    pub ip_d: u8,
    /// Timezone offset in minutes.
    pub tz_offset_min: i16,
    /// Battery percentage at session start.
    pub battery_pct: u8,
    /// GPS latitude ×1000.
    pub gps_lat_e3: i32,
    /// GPS longitude ×1000.
    pub gps_lon_e3: i32,
    /// Ambient light sensor base (lux).
    pub light_lux: i32,
    /// Temperature sensor base (deci-°C).
    pub temp_deci_c: i16,
    /// Accelerometer base.
    pub accel: i8,
    /// Barometric pressure base (hPa).
    pub pressure: i16,
    /// Minute-of-day the app process starts.
    pub start_minute: u16,
}

impl DeviceProfile {
    /// Samples a compact device from the population distributions. Draw
    /// order and types mirror the historical `DeviceEnv::sample` exactly —
    /// the pinned-stream test below fails on any deviation.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let manufacturer = MANUFACTURERS.pick_index(rng) as u8;
        let sdk = SDK_LEVELS.pick(rng) as u8;
        let board = rng.gen_range(1..9i32) as u8;
        let blv_major = rng.gen_range(1..6i32) as u8;
        let blv_minor = rng.gen_range(0..100i32) as u8;
        let cpu_abi = CPU_ABIS.pick_index(rng) as u8;
        let country = COUNTRIES.pick_index(rng) as u8;
        let language = LANGUAGES.pick_index(rng) as u8;
        let density_dpi = DENSITIES.pick(rng) as i16;
        let mac_hash = rng.gen_range(0..1i64 << 24) as u32;
        let serial_hash = rng.gen_range(0..1i64 << 24) as u32;
        let flash_gb = FLASH_GB.pick(rng) as i16;
        let ip_c = rng.gen_range(0..256i64) as u8;
        let ip_d = rng.gen_range(1..255i64) as u8;
        let tz_offset_min = TZ_OFFSETS[rng.gen_range(0..13usize)] as i16;
        let battery_pct = rng.gen_range(5..101i64) as u8;
        let gps_lat_e3 = rng.gen_range(-60_000..70_000i64) as i32;
        let gps_lon_e3 = rng.gen_range(-180_000..180_000i64) as i32;
        // Light is log-uniform-ish: indoor lull to sunlight.
        let light_exp = rng.gen_range(0..5u32);
        let light_lux =
            (10i64.pow(light_exp) + rng.gen_range(0..10i64.pow(light_exp).max(1))) as i32;
        let temp_deci_c = rng.gen_range(-100..400i64) as i16;
        let accel = rng.gen_range(-20..21i64) as i8;
        let pressure = rng.gen_range(950..1050i64) as i16;
        let start_minute = rng.gen_range(0..1440u32) as u16;
        DeviceProfile {
            manufacturer,
            board,
            blv_major,
            blv_minor,
            cpu_abi,
            country,
            language,
            density_dpi,
            mac_hash,
            serial_hash,
            flash_gb,
            sdk,
            ip_c,
            ip_d,
            tz_offset_min,
            battery_pct,
            gps_lat_e3,
            gps_lon_e3,
            light_lux,
            temp_deci_c,
            accel,
            pressure,
            start_minute,
        }
    }

    /// Expands the profile into a full [`DeviceEnv`] — the O(session)
    /// representation, built on demand and dropped with the session.
    pub fn materialize(&self) -> DeviceEnv {
        let manufacturer = MANUFACTURERS.value(self.manufacturer as usize).to_string();
        let sdk = self.sdk as i64;
        let mut strings = BTreeMap::new();
        let mut ints = BTreeMap::new();
        strings.insert(EnvKey::Manufacturer, manufacturer.clone());
        strings.insert(
            EnvKey::Board,
            format!("{}-board-{}", manufacturer, self.board),
        );
        strings.insert(
            EnvKey::BootloaderVersion,
            format!("blv{}.{}", self.blv_major, self.blv_minor),
        );
        strings.insert(EnvKey::Brand, manufacturer);
        strings.insert(
            EnvKey::CpuAbi,
            CPU_ABIS.value(self.cpu_abi as usize).to_string(),
        );
        strings.insert(
            EnvKey::CountryCode,
            COUNTRIES.value(self.country as usize).to_string(),
        );
        strings.insert(
            EnvKey::LanguageCode,
            LANGUAGES.value(self.language as usize).to_string(),
        );
        ints.insert(EnvKey::DisplayDensityDpi, self.density_dpi as i64);
        ints.insert(EnvKey::MacAddrHash, self.mac_hash as i64);
        ints.insert(EnvKey::SerialHash, self.serial_hash as i64);
        ints.insert(EnvKey::FlashSizeGb, self.flash_gb as i64);
        ints.insert(EnvKey::SdkInt, sdk);
        ints.insert(EnvKey::ApiLevel, sdk);
        ints.insert(EnvKey::OsVersionCode, sdk - 15); // rough Android major
        ints.insert(EnvKey::IpOctetC, self.ip_c as i64);
        ints.insert(EnvKey::IpOctetD, self.ip_d as i64);
        ints.insert(EnvKey::TimezoneOffsetMin, self.tz_offset_min as i64);
        ints.insert(EnvKey::BatteryPct, self.battery_pct as i64);

        let mut sensors = BTreeMap::new();
        sensors.insert(SensorKind::GpsLatE3, self.gps_lat_e3 as i64);
        sensors.insert(SensorKind::GpsLonE3, self.gps_lon_e3 as i64);
        sensors.insert(SensorKind::LightLux, self.light_lux as i64);
        sensors.insert(SensorKind::TemperatureDeciC, self.temp_deci_c as i64);
        sensors.insert(SensorKind::Accelerometer, self.accel as i64);
        sensors.insert(SensorKind::Pressure, self.pressure as i64);

        DeviceEnv {
            strings,
            ints,
            sensors,
            start_minute: self.start_minute as u32,
        }
    }
}

impl DeviceEnv {
    /// Samples a user device from the population distributions —
    /// [`DeviceProfile::sample`] followed by
    /// [`DeviceProfile::materialize`], bit-compatible with the historical
    /// direct implementation.
    pub fn sample(rng: &mut impl Rng) -> Self {
        DeviceProfile::sample(rng).materialize()
    }

    /// The attacker's test environments: `n` emulator-like configurations
    /// with far less diversity than the user population (deterministic per
    /// index, matching how real analysts reuse a few AVD images).
    pub fn attacker_lab(n: usize) -> Vec<DeviceEnv> {
        (0..n)
            .map(|i| {
                let mut strings = BTreeMap::new();
                let mut ints = BTreeMap::new();
                strings.insert(EnvKey::Manufacturer, "google".to_string());
                strings.insert(EnvKey::Board, "goldfish".to_string());
                strings.insert(EnvKey::BootloaderVersion, "unknown".to_string());
                strings.insert(EnvKey::Brand, "generic".to_string());
                strings.insert(
                    EnvKey::CpuAbi,
                    if i % 2 == 0 { "x86_64" } else { "arm64-v8a" }.to_string(),
                );
                strings.insert(EnvKey::CountryCode, "US".to_string());
                strings.insert(EnvKey::LanguageCode, "en".to_string());
                ints.insert(EnvKey::DisplayDensityDpi, 320 + 160 * (i as i64 % 2));
                ints.insert(EnvKey::MacAddrHash, 0x5E5E5E);
                ints.insert(EnvKey::SerialHash, 0x100000 + i as i64);
                ints.insert(EnvKey::FlashSizeGb, 32);
                let sdk = 26 + (i as i64 % 3) * 2;
                ints.insert(EnvKey::SdkInt, sdk);
                ints.insert(EnvKey::ApiLevel, sdk);
                ints.insert(EnvKey::OsVersionCode, sdk - 15);
                ints.insert(EnvKey::IpOctetC, 0);
                ints.insert(EnvKey::IpOctetD, 2);
                ints.insert(EnvKey::TimezoneOffsetMin, -480);
                ints.insert(EnvKey::BatteryPct, 100);
                let mut sensors = BTreeMap::new();
                sensors.insert(SensorKind::GpsLatE3, 37_422); // Mountain View default
                sensors.insert(SensorKind::GpsLonE3, -122_084);
                sensors.insert(SensorKind::LightLux, 0);
                sensors.insert(SensorKind::TemperatureDeciC, 250);
                sensors.insert(SensorKind::Accelerometer, 0);
                sensors.insert(SensorKind::Pressure, 1013);
                DeviceEnv {
                    strings,
                    ints,
                    sensors,
                    start_minute: 600, // analysts work office hours
                }
            })
            .collect()
    }

    /// Queries an environment property.
    pub fn query(&self, key: EnvKey) -> EnvValue {
        if let Some(s) = self.strings.get(&key) {
            EnvValue::Str(s.clone())
        } else if let Some(i) = self.ints.get(&key) {
            EnvValue::Int(*i)
        } else {
            EnvValue::Int(0)
        }
    }

    /// A sensor's jitter-free base value (`0` if the sensor is absent).
    /// The population-model evaluators (closed-form trigger-probability
    /// checks) read this instead of [`DeviceEnv::sensor_sample`] so their
    /// verdict is a pure function of the device.
    pub fn sensor_base(&self, kind: SensorKind) -> i64 {
        self.sensors.get(&kind).copied().unwrap_or(0)
    }

    /// Samples a sensor: base value plus per-query jitter.
    pub fn sensor_sample(&self, kind: SensorKind, rng: &mut impl Rng) -> i64 {
        let base = self.sensors.get(&kind).copied().unwrap_or(0);
        let jitter = match kind {
            SensorKind::GpsLatE3 | SensorKind::GpsLonE3 => rng.gen_range(-3..4),
            SensorKind::LightLux => rng.gen_range(-(base / 10 + 1)..base / 10 + 2),
            SensorKind::TemperatureDeciC => rng.gen_range(-5..6),
            SensorKind::Accelerometer => rng.gen_range(-2..3),
            SensorKind::Pressure => rng.gen_range(-2..3),
        };
        base + jitter
    }

    /// Overrides one integer property (used by analysts mutating env
    /// values, §8.3.2, and by tests).
    pub fn set_int(&mut self, key: EnvKey, value: i64) {
        self.ints.insert(key, value);
    }

    /// Overrides one string property.
    pub fn set_str(&mut self, key: EnvKey, value: impl Into<String>) {
        self.strings.insert(key, value.into());
    }

    /// Overrides a sensor's base value.
    pub fn set_sensor(&mut self, kind: SensorKind, value: i64) {
        self.sensors.insert(kind, value);
    }

    /// Integer value of `key` if the key is numeric.
    pub fn int(&self, key: EnvKey) -> Option<i64> {
        self.ints.get(&key).copied()
    }
}

/// An environment query result.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvValue {
    /// String-valued property (manufacturer, locale, …).
    Str(String),
    /// Numeric property (SDK level, IP octet, …).
    Int(i64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn population_is_diverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let devices: Vec<DeviceEnv> = (0..200).map(|_| DeviceEnv::sample(&mut rng)).collect();
        let manufacturers: std::collections::HashSet<String> = devices
            .iter()
            .map(|d| match d.query(EnvKey::Manufacturer) {
                EnvValue::Str(s) => s,
                _ => unreachable!(),
            })
            .collect();
        assert!(manufacturers.len() >= 8, "got {}", manufacturers.len());
        let ip_c: std::collections::HashSet<i64> = devices
            .iter()
            .filter_map(|d| d.int(EnvKey::IpOctetC))
            .collect();
        assert!(ip_c.len() > 50);
    }

    #[test]
    fn attacker_lab_is_homogeneous() {
        let lab = DeviceEnv::attacker_lab(5);
        assert_eq!(lab.len(), 5);
        for d in &lab {
            assert_eq!(
                d.query(EnvKey::Manufacturer),
                EnvValue::Str("google".into())
            );
            assert_eq!(d.int(EnvKey::IpOctetC), Some(0));
        }
        // Deterministic.
        assert_eq!(DeviceEnv::attacker_lab(2), DeviceEnv::attacker_lab(2));
    }

    #[test]
    fn sensor_jitter_stays_near_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let env = DeviceEnv::sample(&mut rng);
        let base = env.sensor_sample(SensorKind::Pressure, &mut rng);
        for _ in 0..100 {
            let v = env.sensor_sample(SensorKind::Pressure, &mut rng);
            assert!((v - base).abs() < 10);
        }
    }

    #[test]
    fn overrides_apply() {
        let mut env = DeviceEnv::attacker_lab(1).pop().unwrap();
        env.set_int(EnvKey::IpOctetC, 120);
        assert_eq!(env.int(EnvKey::IpOctetC), Some(120));
        env.set_str(EnvKey::Manufacturer, "samsung");
        assert_eq!(
            env.query(EnvKey::Manufacturer),
            EnvValue::Str("samsung".into())
        );
        env.set_sensor(SensorKind::LightLux, 5000);
        let mut rng = StdRng::seed_from_u64(3);
        let v = env.sensor_sample(SensorKind::LightLux, &mut rng);
        assert!((4000..6000).contains(&v));
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Pinned values captured from the pre-`DeviceProfile` sampler. Any
    /// change to draw order, integer types, or table weights breaks seeded
    /// population reproducibility and must fail here.
    #[test]
    fn sample_stream_is_pinned() {
        type Pin = (u64, &'static str, i64, i64, i64, i64, i64, u32);
        let pins: [Pin; 3] = [
            (1, "motorola", 27, 238, 9_256_155, -49_541, 1, 503),
            (42, "samsung", 26, 205, 9_786_977, 20_179, 1_707, 866),
            (99, "xiaomi", 28, 38, 9_800_349, -34_493, 1, 928),
        ];
        for (seed, man, sdk, ip_c, mac, lat, light, start) in pins {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = DeviceEnv::sample(&mut rng);
            assert_eq!(e.query(EnvKey::Manufacturer), EnvValue::Str(man.into()));
            assert_eq!(e.int(EnvKey::SdkInt), Some(sdk));
            assert_eq!(e.int(EnvKey::IpOctetC), Some(ip_c));
            assert_eq!(e.int(EnvKey::MacAddrHash), Some(mac));
            assert_eq!(e.sensor_base(SensorKind::GpsLatE3), lat);
            assert_eq!(e.sensor_base(SensorKind::LightLux), light);
            assert_eq!(e.start_minute, start, "seed {seed}");
        }
    }

    #[test]
    fn profile_stays_compact() {
        // The point of the profile is that a million of them fit in tens of
        // megabytes; a map-backed regression would blow straight past this.
        assert!(std::mem::size_of::<DeviceProfile>() <= 48);
    }

    #[test]
    fn materialize_is_deterministic_and_matches_sample() {
        for seed in [7u64, 1234, 88_000] {
            let profile = DeviceProfile::sample(&mut StdRng::seed_from_u64(seed));
            assert_eq!(
                profile,
                DeviceProfile::sample(&mut StdRng::seed_from_u64(seed))
            );
            let direct = DeviceEnv::sample(&mut StdRng::seed_from_u64(seed));
            let via_profile = profile.materialize();
            assert_eq!(via_profile.strings, direct.strings);
            assert_eq!(via_profile.ints, direct.ints);
            assert_eq!(via_profile.sensors, direct.sensors);
            assert_eq!(via_profile.start_minute, direct.start_minute);
        }
    }

    #[test]
    fn weighted_tables_expose_probabilities() {
        let p = MANUFACTURERS.prob_of(|m| *m == "samsung");
        assert!((0.0..=1.0).contains(&p) && p > 0.1, "samsung share {p}");
        let all = MANUFACTURERS.prob_of(|_| true);
        assert!((all - 1.0).abs() < 1e-12);
        assert_eq!(SDK_LEVELS.entries().len(), 12);
        // pick_index and value agree with pick.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let i = COUNTRIES.pick_index(&mut a);
            assert_eq!(COUNTRIES.value(i), COUNTRIES.pick(&mut b));
        }
    }
}
