//! Device environments: the diversity axis BombDroid exploits.
//!
//! The paper's core observation (D1, §1) is that "the hardware/software
//! environments and sensor values are very diverse on the user side, while
//! the attacker can only afford ... a limited number of environments".
//! [`DeviceEnv::sample`] draws devices from population distributions
//! modelled on the Android Dashboards / AppBrain statistics the paper cites
//! (§7.3); [`DeviceEnv::attacker_lab`] yields the handful of emulator-like
//! configurations an attacker tests on.

use bombdroid_dex::{EnvKey, SensorKind};
use rand::Rng;
use std::collections::BTreeMap;

/// A concrete device/user environment.
///
/// String-valued properties live in `strings`, numeric ones in `ints`;
/// sensors have a base value that jitters per query (see
/// [`DeviceEnv::sensor_sample`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEnv {
    strings: BTreeMap<EnvKey, String>,
    ints: BTreeMap<EnvKey, i64>,
    sensors: BTreeMap<SensorKind, i64>,
    /// Minute-of-day at which the app process starts on this device.
    pub start_minute: u32,
}

/// (value, weight) population table.
type Table<T> = &'static [(T, u32)];

const MANUFACTURERS: Table<&str> = &[
    ("samsung", 30),
    ("xiaomi", 13),
    ("huawei", 10),
    ("oppo", 9),
    ("vivo", 8),
    ("motorola", 5),
    ("lge", 4),
    ("oneplus", 3),
    ("google", 3),
    ("sony", 2),
    ("htc", 2),
    ("asus", 2),
    ("lenovo", 2),
    ("zte", 1),
    ("tcl", 1),
    ("realme", 5),
];

const SDK_LEVELS: Table<i64> = &[
    (19, 2),
    (21, 3),
    (22, 4),
    (23, 8),
    (24, 8),
    (25, 7),
    (26, 10),
    (27, 12),
    (28, 16),
    (29, 14),
    (30, 10),
    (31, 6),
];

const DENSITIES: Table<i64> = &[
    (120, 2),
    (160, 8),
    (240, 18),
    (320, 35),
    (480, 27),
    (640, 10),
];

const CPU_ABIS: Table<&str> = &[
    ("arm64-v8a", 75),
    ("armeabi-v7a", 18),
    ("x86_64", 5),
    ("x86", 2),
];

const FLASH_GB: Table<i64> = &[(8, 5), (16, 15), (32, 30), (64, 28), (128, 16), (256, 6)];

const COUNTRIES: Table<&str> = &[
    ("US", 14),
    ("IN", 18),
    ("BR", 8),
    ("ID", 7),
    ("CN", 10),
    ("RU", 5),
    ("MX", 4),
    ("DE", 4),
    ("JP", 4),
    ("GB", 3),
    ("FR", 3),
    ("TR", 3),
    ("VN", 3),
    ("KR", 2),
    ("ES", 2),
    ("IT", 2),
    ("NG", 2),
    ("EG", 2),
    ("PK", 2),
    ("TH", 2),
];

const LANGUAGES: Table<&str> = &[
    ("en", 30),
    ("hi", 8),
    ("pt", 8),
    ("id", 7),
    ("zh", 10),
    ("ru", 5),
    ("es", 9),
    ("de", 4),
    ("ja", 4),
    ("fr", 4),
    ("tr", 3),
    ("vi", 3),
    ("ko", 2),
    ("ar", 3),
];

fn pick<T: Copy>(rng: &mut impl Rng, table: Table<T>) -> T {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (value, weight) in table {
        if roll < *weight {
            return *value;
        }
        roll -= weight;
    }
    table[table.len() - 1].0
}

impl DeviceEnv {
    /// Samples a user device from the population distributions.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let manufacturer = pick(rng, MANUFACTURERS).to_string();
        let sdk = pick(rng, SDK_LEVELS);
        let mut strings = BTreeMap::new();
        let mut ints = BTreeMap::new();
        strings.insert(EnvKey::Manufacturer, manufacturer.clone());
        strings.insert(
            EnvKey::Board,
            format!("{}-board-{}", manufacturer, rng.gen_range(1..9)),
        );
        strings.insert(
            EnvKey::BootloaderVersion,
            format!("blv{}.{}", rng.gen_range(1..6), rng.gen_range(0..100)),
        );
        strings.insert(EnvKey::Brand, manufacturer);
        strings.insert(EnvKey::CpuAbi, pick(rng, CPU_ABIS).to_string());
        strings.insert(EnvKey::CountryCode, pick(rng, COUNTRIES).to_string());
        strings.insert(EnvKey::LanguageCode, pick(rng, LANGUAGES).to_string());
        ints.insert(EnvKey::DisplayDensityDpi, pick(rng, DENSITIES));
        ints.insert(EnvKey::MacAddrHash, rng.gen_range(0..1 << 24));
        ints.insert(EnvKey::SerialHash, rng.gen_range(0..1 << 24));
        ints.insert(EnvKey::FlashSizeGb, pick(rng, FLASH_GB));
        ints.insert(EnvKey::SdkInt, sdk);
        ints.insert(EnvKey::ApiLevel, sdk);
        ints.insert(EnvKey::OsVersionCode, sdk - 15); // rough Android major
        ints.insert(EnvKey::IpOctetC, rng.gen_range(0..256));
        ints.insert(EnvKey::IpOctetD, rng.gen_range(1..255));
        ints.insert(
            EnvKey::TimezoneOffsetMin,
            [
                -480, -420, -300, -240, -180, 0, 60, 120, 180, 330, 420, 480, 540,
            ][rng.gen_range(0..13usize)],
        );
        ints.insert(EnvKey::BatteryPct, rng.gen_range(5..101));

        let mut sensors = BTreeMap::new();
        sensors.insert(SensorKind::GpsLatE3, rng.gen_range(-60_000..70_000));
        sensors.insert(SensorKind::GpsLonE3, rng.gen_range(-180_000..180_000));
        // Light is log-uniform-ish: indoor lull to sunlight.
        let light_exp = rng.gen_range(0..5);
        sensors.insert(
            SensorKind::LightLux,
            10i64.pow(light_exp) + rng.gen_range(0..10i64.pow(light_exp).max(1)),
        );
        sensors.insert(SensorKind::TemperatureDeciC, rng.gen_range(-100..400));
        sensors.insert(SensorKind::Accelerometer, rng.gen_range(-20..21));
        sensors.insert(SensorKind::Pressure, rng.gen_range(950..1050));

        DeviceEnv {
            strings,
            ints,
            sensors,
            start_minute: rng.gen_range(0..1440),
        }
    }

    /// The attacker's test environments: `n` emulator-like configurations
    /// with far less diversity than the user population (deterministic per
    /// index, matching how real analysts reuse a few AVD images).
    pub fn attacker_lab(n: usize) -> Vec<DeviceEnv> {
        (0..n)
            .map(|i| {
                let mut strings = BTreeMap::new();
                let mut ints = BTreeMap::new();
                strings.insert(EnvKey::Manufacturer, "google".to_string());
                strings.insert(EnvKey::Board, "goldfish".to_string());
                strings.insert(EnvKey::BootloaderVersion, "unknown".to_string());
                strings.insert(EnvKey::Brand, "generic".to_string());
                strings.insert(
                    EnvKey::CpuAbi,
                    if i % 2 == 0 { "x86_64" } else { "arm64-v8a" }.to_string(),
                );
                strings.insert(EnvKey::CountryCode, "US".to_string());
                strings.insert(EnvKey::LanguageCode, "en".to_string());
                ints.insert(EnvKey::DisplayDensityDpi, 320 + 160 * (i as i64 % 2));
                ints.insert(EnvKey::MacAddrHash, 0x5E5E5E);
                ints.insert(EnvKey::SerialHash, 0x100000 + i as i64);
                ints.insert(EnvKey::FlashSizeGb, 32);
                let sdk = 26 + (i as i64 % 3) * 2;
                ints.insert(EnvKey::SdkInt, sdk);
                ints.insert(EnvKey::ApiLevel, sdk);
                ints.insert(EnvKey::OsVersionCode, sdk - 15);
                ints.insert(EnvKey::IpOctetC, 0);
                ints.insert(EnvKey::IpOctetD, 2);
                ints.insert(EnvKey::TimezoneOffsetMin, -480);
                ints.insert(EnvKey::BatteryPct, 100);
                let mut sensors = BTreeMap::new();
                sensors.insert(SensorKind::GpsLatE3, 37_422); // Mountain View default
                sensors.insert(SensorKind::GpsLonE3, -122_084);
                sensors.insert(SensorKind::LightLux, 0);
                sensors.insert(SensorKind::TemperatureDeciC, 250);
                sensors.insert(SensorKind::Accelerometer, 0);
                sensors.insert(SensorKind::Pressure, 1013);
                DeviceEnv {
                    strings,
                    ints,
                    sensors,
                    start_minute: 600, // analysts work office hours
                }
            })
            .collect()
    }

    /// Queries an environment property.
    pub fn query(&self, key: EnvKey) -> EnvValue {
        if let Some(s) = self.strings.get(&key) {
            EnvValue::Str(s.clone())
        } else if let Some(i) = self.ints.get(&key) {
            EnvValue::Int(*i)
        } else {
            EnvValue::Int(0)
        }
    }

    /// Samples a sensor: base value plus per-query jitter.
    pub fn sensor_sample(&self, kind: SensorKind, rng: &mut impl Rng) -> i64 {
        let base = self.sensors.get(&kind).copied().unwrap_or(0);
        let jitter = match kind {
            SensorKind::GpsLatE3 | SensorKind::GpsLonE3 => rng.gen_range(-3..4),
            SensorKind::LightLux => rng.gen_range(-(base / 10 + 1)..base / 10 + 2),
            SensorKind::TemperatureDeciC => rng.gen_range(-5..6),
            SensorKind::Accelerometer => rng.gen_range(-2..3),
            SensorKind::Pressure => rng.gen_range(-2..3),
        };
        base + jitter
    }

    /// Overrides one integer property (used by analysts mutating env
    /// values, §8.3.2, and by tests).
    pub fn set_int(&mut self, key: EnvKey, value: i64) {
        self.ints.insert(key, value);
    }

    /// Overrides one string property.
    pub fn set_str(&mut self, key: EnvKey, value: impl Into<String>) {
        self.strings.insert(key, value.into());
    }

    /// Overrides a sensor's base value.
    pub fn set_sensor(&mut self, kind: SensorKind, value: i64) {
        self.sensors.insert(kind, value);
    }

    /// Integer value of `key` if the key is numeric.
    pub fn int(&self, key: EnvKey) -> Option<i64> {
        self.ints.get(&key).copied()
    }
}

/// An environment query result.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvValue {
    /// String-valued property (manufacturer, locale, …).
    Str(String),
    /// Numeric property (SDK level, IP octet, …).
    Int(i64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn population_is_diverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let devices: Vec<DeviceEnv> = (0..200).map(|_| DeviceEnv::sample(&mut rng)).collect();
        let manufacturers: std::collections::HashSet<String> = devices
            .iter()
            .map(|d| match d.query(EnvKey::Manufacturer) {
                EnvValue::Str(s) => s,
                _ => unreachable!(),
            })
            .collect();
        assert!(manufacturers.len() >= 8, "got {}", manufacturers.len());
        let ip_c: std::collections::HashSet<i64> = devices
            .iter()
            .filter_map(|d| d.int(EnvKey::IpOctetC))
            .collect();
        assert!(ip_c.len() > 50);
    }

    #[test]
    fn attacker_lab_is_homogeneous() {
        let lab = DeviceEnv::attacker_lab(5);
        assert_eq!(lab.len(), 5);
        for d in &lab {
            assert_eq!(
                d.query(EnvKey::Manufacturer),
                EnvValue::Str("google".into())
            );
            assert_eq!(d.int(EnvKey::IpOctetC), Some(0));
        }
        // Deterministic.
        assert_eq!(DeviceEnv::attacker_lab(2), DeviceEnv::attacker_lab(2));
    }

    #[test]
    fn sensor_jitter_stays_near_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let env = DeviceEnv::sample(&mut rng);
        let base = env.sensor_sample(SensorKind::Pressure, &mut rng);
        for _ in 0..100 {
            let v = env.sensor_sample(SensorKind::Pressure, &mut rng);
            assert!((v - base).abs() < 10);
        }
    }

    #[test]
    fn overrides_apply() {
        let mut env = DeviceEnv::attacker_lab(1).pop().unwrap();
        env.set_int(EnvKey::IpOctetC, 120);
        assert_eq!(env.int(EnvKey::IpOctetC), Some(120));
        env.set_str(EnvKey::Manufacturer, "samsung");
        assert_eq!(
            env.query(EnvKey::Manufacturer),
            EnvValue::Str("samsung".into())
        );
        env.set_sensor(SensorKind::LightLux, 5000);
        let mut rng = StdRng::seed_from_u64(3);
        let v = env.sensor_sample(SensorKind::LightLux, &mut rng);
        assert!((4000..6000).contains(&v));
    }
}
