//! Pre-decode pass: lowers `dex::Instr` method bodies into flat,
//! cache-friendly [`DecodedOp`] arrays.
//!
//! Decoding happens once per method per package (lazily, behind a
//! [`OnceLock`], next to the package's lazy class digests and dispatch
//! index) and pays for itself on the first few executions:
//!
//! * register operands become pre-resolved `usize` indices into a frame
//!   whose size is known up front, so the hot loop indexes directly instead
//!   of bounds-probing and resizing;
//! * branch targets are remapped to decoded-instruction offsets;
//! * `Invoke` callees are resolved through the package's O(1) dispatch
//!   index into flat method ids, so calls skip the per-call hash lookup;
//! * constants are pre-converted into [`RtValue`]s and static-field keys
//!   are pre-rendered, eliminating the per-execution `to_string()`s of the
//!   tree-walking interpreter;
//! * hot instruction pairs are fused into superinstructions
//!   ([`DecodedOp::HashIf`], [`DecodedOp::BinOpConstIf`],
//!   [`DecodedOp::ConstIf`], [`DecodedOp::ConstArrayGet`]), and
//!   straight-line runs of arithmetic become a single
//!   [`DecodedOp::ArithChain`], when no consumed instruction is a branch
//!   target.
//!
//! The decoded form is an *encoding* change only: every fused op replays
//! the exact micro-op sequence of the original pair (charge, write,
//! charge, branch), and every `If` carries the original instruction index
//! so QC-coverage telemetry keys (`eq_satisfied` / `outer_satisfied`)
//! stay bit-identical with the legacy tree-walker.

use crate::package::InstalledPackage;
use crate::value::RtValue;
use bombdroid_dex::{
    BinOp, CondOp, HostApi, Instr, MethodRef, Reg, RegOrConst, StrOp, UnOp, Value,
};
use std::sync::{Arc, OnceLock};

/// Right-hand operand of a decoded conditional branch.
#[derive(Debug, Clone)]
pub(crate) enum DecodedRhs {
    /// Compare against a frame slot.
    Slot(usize),
    /// Compare against a pre-converted constant.
    Const(RtValue),
}

/// Integer right-hand operand of an [`DecodedOp::ArithChain`] step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArithRhs {
    /// Read the operand from a frame slot (a fused `BinOp`).
    Slot(usize),
    /// Pre-decoded literal (a fused `BinOpConst`).
    Const(i64),
}

/// One step of a fused arithmetic chain: `dst = lhs <op> rhs`.
#[derive(Debug, Clone)]
pub(crate) struct ArithStep {
    pub op: BinOp,
    pub dst: usize,
    pub lhs: usize,
    pub rhs: ArithRhs,
}

/// One pre-decoded instruction. Register operands are frame-slot indices
/// guaranteed to be in-bounds for the enclosing body's frame size; branch
/// targets index into the decoded op array. `pc` fields on branch ops are
/// the *original* instruction indices, preserved for telemetry keys.
#[derive(Debug, Clone)]
pub(crate) enum DecodedOp {
    Const {
        dst: usize,
        value: RtValue,
    },
    Move {
        dst: usize,
        src: usize,
    },
    BinOp {
        op: BinOp,
        dst: usize,
        lhs: usize,
        rhs: usize,
    },
    BinOpConst {
        op: BinOp,
        dst: usize,
        lhs: usize,
        rhs: i64,
    },
    UnOp {
        op: UnOp,
        dst: usize,
        src: usize,
    },
    StrOp {
        op: StrOp,
        dst: usize,
        lhs: usize,
        rhs: Option<usize>,
    },
    If {
        cond: CondOp,
        lhs: usize,
        rhs: DecodedRhs,
        target: usize,
        pc: u32,
    },
    Switch {
        src: usize,
        arms: Box<[(i64, usize)]>,
        default: usize,
    },
    Goto {
        target: usize,
    },
    Invoke {
        /// Flat method id in the [`DecodedProgram`], `None` if the callee
        /// does not resolve in this package.
        target: Option<u32>,
        /// Retained for `method_calls` telemetry and `UnknownMethod` faults.
        mref: MethodRef,
        args: Box<[usize]>,
        dst: Option<usize>,
    },
    InvokeReflect {
        name: usize,
        args: Box<[usize]>,
        dst: Option<usize>,
    },
    HostCall {
        api: HostApi,
        args: Box<[usize]>,
        dst: Option<usize>,
    },
    GetField {
        dst: usize,
        obj: usize,
        name: Arc<str>,
    },
    PutField {
        obj: usize,
        src: usize,
        name: Arc<str>,
        /// Pre-rendered `Class.field` display form for field-value profiling.
        display: Arc<str>,
    },
    GetStatic {
        dst: usize,
        key: Arc<str>,
    },
    PutStatic {
        src: usize,
        key: Arc<str>,
    },
    NewInstance {
        dst: usize,
    },
    NewArray {
        dst: usize,
        len: usize,
    },
    ArrayGet {
        dst: usize,
        arr: usize,
        idx: usize,
    },
    ArrayPut {
        arr: usize,
        idx: usize,
        src: usize,
    },
    ArrayLen {
        dst: usize,
        arr: usize,
    },
    Hash {
        dst: usize,
        src: usize,
        salt: Arc<[u8]>,
    },
    DecryptExec {
        blob: u32,
        key_src: usize,
    },
    StegoExtract {
        dst: usize,
        src: usize,
    },
    Return {
        src: Option<usize>,
    },
    Throw {
        msg: Arc<str>,
    },
    Nop,
    /// Fused `Hash` + `If` on the hash result — the bomb-trigger guard
    /// (`Hash(X|salt) == digest`).
    HashIf {
        dst: usize,
        src: usize,
        salt: Arc<[u8]>,
        cond: CondOp,
        rhs: RtValue,
        target: usize,
        pc: u32,
    },
    /// Fused `BinOpConst` + `If` on the result — compare+branch guards
    /// (loop counters, threshold checks).
    BinOpConstIf {
        op: BinOp,
        dst: usize,
        lhs: usize,
        rhs: i64,
        cond: CondOp,
        cmp: DecodedRhs,
        target: usize,
        pc: u32,
    },
    /// Fused `Const` + `If` on the loaded value.
    ConstIf {
        dst: usize,
        value: RtValue,
        cond: CondOp,
        rhs: DecodedRhs,
        target: usize,
        pc: u32,
    },
    /// Fused integer-`Const` index + `ArrayGet` through it.
    ConstArrayGet {
        idx_dst: usize,
        idx_val: i64,
        dst: usize,
        arr: usize,
    },
    /// Fused run of two or more consecutive `BinOp`/`BinOpConst`
    /// instructions — one dispatch for a whole straight-line arithmetic
    /// chain (generated hash arithmetic is dominated by these). Each step
    /// replays its legacy micro-ops in order: charge, operand reads (with
    /// the legacy fault precedence), compute, write.
    ArithChain {
        steps: Box<[ArithStep]>,
    },
}

/// A fully decoded method body (or decrypted fragment body).
#[derive(Debug)]
pub(crate) struct DecodedBody {
    pub ops: Vec<DecodedOp>,
    /// Minimum frame size: one past the highest slot any op touches.
    pub frame: usize,
}

/// One method's slot in the decoded program; the body is decoded on first
/// call.
#[derive(Debug)]
pub(crate) struct DecodedMethodEntry {
    pub mref: MethodRef,
    pub params: u16,
    pub registers: u16,
    ci: usize,
    mi: usize,
    body: OnceLock<Arc<DecodedBody>>,
}

/// Per-package decoded program: a flat table of every method, indexed by
/// `class_offsets[ci] + mi`, shared by all VMs (and forked sessions)
/// booting the package.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    class_offsets: Vec<usize>,
    methods: Vec<DecodedMethodEntry>,
}

impl DecodedProgram {
    /// Builds the method table (no bodies are decoded yet).
    pub fn build(pkg: &InstalledPackage) -> Self {
        let mut class_offsets = Vec::with_capacity(pkg.dex.classes.len());
        let mut methods = Vec::new();
        for (ci, class) in pkg.dex.classes.iter().enumerate() {
            class_offsets.push(methods.len());
            for (mi, method) in class.methods.iter().enumerate() {
                methods.push(DecodedMethodEntry {
                    mref: method.method_ref(),
                    params: method.params,
                    registers: method.registers,
                    ci,
                    mi,
                    body: OnceLock::new(),
                });
            }
        }
        DecodedProgram {
            class_offsets,
            methods,
        }
    }

    /// Resolves a method reference to its flat id, with exactly the legacy
    /// shadowing semantics (via the package's dispatch index).
    pub fn resolve(&self, pkg: &InstalledPackage, mref: &MethodRef) -> Option<usize> {
        pkg.resolve_method(mref)
            .map(|(ci, mi)| self.class_offsets[ci] + mi)
    }

    /// The method entry for a flat id.
    pub fn entry(&self, id: usize) -> &DecodedMethodEntry {
        &self.methods[id]
    }

    /// The decoded body for a flat id, decoding it on first call.
    pub fn body(&self, pkg: &InstalledPackage, id: usize) -> &Arc<DecodedBody> {
        let entry = &self.methods[id];
        entry.body.get_or_init(|| {
            let body = decode_body(pkg, self, &pkg.dex.classes[entry.ci].methods[entry.mi].body);
            if bombdroid_obs::enabled() {
                bombdroid_obs::counter_add("vm.decode.methods", 1);
                bombdroid_obs::counter_add("vm.decode.ops", body.ops.len() as u64);
            }
            Arc::new(body)
        })
    }
}

/// Tracks a frame-slot reference while lowering, growing the frame bound.
fn slot(max: &mut usize, r: Reg) -> usize {
    let i = r.0 as usize;
    if i + 1 > *max {
        *max = i + 1;
    }
    i
}

fn slot_opt(max: &mut usize, r: Option<Reg>) -> Option<usize> {
    r.map(|r| slot(max, r))
}

fn slots(max: &mut usize, rs: &[Reg]) -> Box<[usize]> {
    rs.iter().map(|&r| slot(max, r)).collect()
}

fn rhs(max: &mut usize, r: &RegOrConst) -> DecodedRhs {
    match r {
        RegOrConst::Reg(r) => DecodedRhs::Slot(slot(max, *r)),
        RegOrConst::Const(v) => DecodedRhs::Const(v.clone().into()),
    }
}

/// Lowers one body (method or fragment) into decoded form, fusing hot
/// pairs where the second instruction is not a branch target.
pub(crate) fn decode_body(
    pkg: &InstalledPackage,
    prog: &DecodedProgram,
    body: &[Instr],
) -> DecodedBody {
    // An instruction that is ever jumped to cannot be consumed as the
    // second half of a superinstruction.
    let mut is_target = vec![false; body.len() + 1];
    for instr in body {
        instr.for_each_branch_target(|t| is_target[t.min(body.len())] = true);
    }

    let mut max = 0usize;
    let mut ops: Vec<DecodedOp> = Vec::with_capacity(body.len());
    // Original pc -> decoded index; body.len() maps to ops.len() (exit).
    let mut pc_map = vec![usize::MAX; body.len() + 1];
    let mut fused = 0u64;

    let mut pc = 0usize;
    while pc < body.len() {
        pc_map[pc] = ops.len();
        // A run of two or more arithmetic ops (none of which, past the
        // first, is jumped to) becomes one ArithChain dispatch.
        let mut run = 0usize;
        while pc + run < body.len()
            && matches!(
                body[pc + run],
                Instr::BinOp { .. } | Instr::BinOpConst { .. }
            )
            && (run == 0 || !is_target[pc + run])
        {
            run += 1;
        }
        if run >= 2 {
            let steps: Box<[ArithStep]> = body[pc..pc + run]
                .iter()
                .map(|i| arith_step(&mut max, i))
                .collect();
            ops.push(DecodedOp::ArithChain { steps });
            // Interior pcs are unreachable (not branch targets); map them
            // past the chain so a malformed jump cannot land mid-chain.
            pc_map[pc + 1..pc + run].fill(ops.len());
            fused += (run - 1) as u64;
            pc += run;
            continue;
        }
        if pc + 1 < body.len() && !is_target[pc + 1] {
            if let Some(op) = try_fuse(&mut max, &body[pc], &body[pc + 1], pc + 1) {
                ops.push(op);
                // Nothing branches to pc+1; map it past the fused op so a
                // (malformed) jump there cannot land mid-pair.
                pc_map[pc + 1] = ops.len();
                fused += 1;
                pc += 2;
                continue;
            }
        }
        ops.push(lower(&mut max, pkg, prog, &body[pc], pc));
        pc += 1;
    }
    pc_map[body.len()] = ops.len();

    // Remap branch targets from original indices to decoded offsets.
    let map = |t: usize| pc_map[t.min(body.len())];
    for op in &mut ops {
        match op {
            DecodedOp::If { target, .. }
            | DecodedOp::Goto { target }
            | DecodedOp::HashIf { target, .. }
            | DecodedOp::BinOpConstIf { target, .. }
            | DecodedOp::ConstIf { target, .. } => *target = map(*target),
            DecodedOp::Switch { arms, default, .. } => {
                for (_, t) in arms.iter_mut() {
                    *t = map(*t);
                }
                *default = map(*default);
            }
            _ => {}
        }
    }

    if fused > 0 && bombdroid_obs::enabled() {
        bombdroid_obs::counter_add("vm.decode.fused", fused);
    }
    DecodedBody { ops, frame: max }
}

/// Lowers one `BinOp`/`BinOpConst` into an [`ArithChain`] step.
///
/// [`ArithChain`]: DecodedOp::ArithChain
fn arith_step(max: &mut usize, instr: &Instr) -> ArithStep {
    match instr {
        Instr::BinOp { op, dst, lhs, rhs } => ArithStep {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: ArithRhs::Slot(slot(max, *rhs)),
        },
        Instr::BinOpConst { op, dst, lhs, rhs } => ArithStep {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: ArithRhs::Const(*rhs),
        },
        _ => unreachable!("arith_step caller checked the instruction kind"),
    }
}

/// Attempts to fuse the pair at (`first`, `second`); `if_pc` is the
/// original index of the second instruction (the telemetry key for its
/// `If` component). Targets are left as original indices and remapped by
/// the caller.
fn try_fuse(max: &mut usize, first: &Instr, second: &Instr, if_pc: usize) -> Option<DecodedOp> {
    match (first, second) {
        (
            Instr::Hash { dst, src, salt },
            Instr::If {
                cond,
                lhs,
                rhs: RegOrConst::Const(v),
                target,
            },
        ) if lhs == dst => Some(DecodedOp::HashIf {
            dst: slot(max, *dst),
            src: slot(max, *src),
            salt: Arc::from(salt.as_slice()),
            cond: *cond,
            rhs: v.clone().into(),
            target: *target,
            pc: if_pc as u32,
        }),
        (
            Instr::BinOpConst {
                op,
                dst,
                lhs,
                rhs: lit,
            },
            Instr::If {
                cond,
                lhs: if_lhs,
                rhs: if_rhs,
                target,
            },
        ) if if_lhs == dst => Some(DecodedOp::BinOpConstIf {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: *lit,
            cond: *cond,
            cmp: rhs(max, if_rhs),
            target: *target,
            pc: if_pc as u32,
        }),
        (
            Instr::Const { dst, value },
            Instr::If {
                cond,
                lhs,
                rhs: if_rhs,
                target,
            },
        ) if lhs == dst => Some(DecodedOp::ConstIf {
            dst: slot(max, *dst),
            value: value.clone().into(),
            cond: *cond,
            rhs: rhs(max, if_rhs),
            target: *target,
            pc: if_pc as u32,
        }),
        (
            Instr::Const {
                dst,
                value: Value::Int(n),
            },
            Instr::ArrayGet {
                dst: gdst,
                arr,
                idx,
            },
        ) if idx == dst => Some(DecodedOp::ConstArrayGet {
            idx_dst: slot(max, *dst),
            idx_val: *n,
            dst: slot(max, *gdst),
            arr: slot(max, *arr),
        }),
        _ => None,
    }
}

/// Lowers one instruction (no fusion); `pc` is its original index.
fn lower(
    max: &mut usize,
    pkg: &InstalledPackage,
    prog: &DecodedProgram,
    instr: &Instr,
    pc: usize,
) -> DecodedOp {
    match instr {
        Instr::Const { dst, value } => DecodedOp::Const {
            dst: slot(max, *dst),
            value: value.clone().into(),
        },
        Instr::Move { dst, src } => DecodedOp::Move {
            dst: slot(max, *dst),
            src: slot(max, *src),
        },
        Instr::BinOp { op, dst, lhs, rhs } => DecodedOp::BinOp {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: slot(max, *rhs),
        },
        Instr::BinOpConst { op, dst, lhs, rhs } => DecodedOp::BinOpConst {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: *rhs,
        },
        Instr::UnOp { op, dst, src } => DecodedOp::UnOp {
            op: *op,
            dst: slot(max, *dst),
            src: slot(max, *src),
        },
        Instr::StrOp { op, dst, lhs, rhs } => DecodedOp::StrOp {
            op: *op,
            dst: slot(max, *dst),
            lhs: slot(max, *lhs),
            rhs: slot_opt(max, *rhs),
        },
        Instr::If {
            cond,
            lhs,
            rhs: if_rhs,
            target,
        } => DecodedOp::If {
            cond: *cond,
            lhs: slot(max, *lhs),
            rhs: rhs(max, if_rhs),
            target: *target,
            pc: pc as u32,
        },
        Instr::Switch { src, arms, default } => DecodedOp::Switch {
            src: slot(max, *src),
            arms: arms.clone().into_boxed_slice(),
            default: *default,
        },
        Instr::Goto { target } => DecodedOp::Goto { target: *target },
        Instr::Invoke { method, args, dst } => DecodedOp::Invoke {
            target: prog.resolve(pkg, method).map(|id| id as u32),
            mref: method.clone(),
            args: slots(max, args),
            dst: slot_opt(max, *dst),
        },
        Instr::InvokeReflect { name, args, dst } => DecodedOp::InvokeReflect {
            name: slot(max, *name),
            args: slots(max, args),
            dst: slot_opt(max, *dst),
        },
        Instr::HostCall { api, args, dst } => DecodedOp::HostCall {
            api: api.clone(),
            args: slots(max, args),
            dst: slot_opt(max, *dst),
        },
        Instr::GetField { dst, obj, field } => DecodedOp::GetField {
            dst: slot(max, *dst),
            obj: slot(max, *obj),
            name: field.name.clone(),
        },
        Instr::PutField { obj, field, src } => DecodedOp::PutField {
            obj: slot(max, *obj),
            src: slot(max, *src),
            name: field.name.clone(),
            display: Arc::from(field.to_string()),
        },
        Instr::GetStatic { dst, field } => DecodedOp::GetStatic {
            dst: slot(max, *dst),
            key: Arc::from(field.to_string()),
        },
        Instr::PutStatic { field, src } => DecodedOp::PutStatic {
            src: slot(max, *src),
            key: Arc::from(field.to_string()),
        },
        Instr::NewInstance { dst, class: _ } => DecodedOp::NewInstance {
            dst: slot(max, *dst),
        },
        Instr::NewArray { dst, len } => DecodedOp::NewArray {
            dst: slot(max, *dst),
            len: slot(max, *len),
        },
        Instr::ArrayGet { dst, arr, idx } => DecodedOp::ArrayGet {
            dst: slot(max, *dst),
            arr: slot(max, *arr),
            idx: slot(max, *idx),
        },
        Instr::ArrayPut { arr, idx, src } => DecodedOp::ArrayPut {
            arr: slot(max, *arr),
            idx: slot(max, *idx),
            src: slot(max, *src),
        },
        Instr::ArrayLen { dst, arr } => DecodedOp::ArrayLen {
            dst: slot(max, *dst),
            arr: slot(max, *arr),
        },
        Instr::Hash { dst, src, salt } => DecodedOp::Hash {
            dst: slot(max, *dst),
            src: slot(max, *src),
            salt: Arc::from(salt.as_slice()),
        },
        Instr::DecryptExec { blob, key_src } => DecodedOp::DecryptExec {
            blob: blob.0,
            key_src: slot(max, *key_src),
        },
        Instr::StegoExtract { dst, src } => DecodedOp::StegoExtract {
            dst: slot(max, *dst),
            src: slot(max, *src),
        },
        Instr::Return { src } => DecodedOp::Return {
            src: slot_opt(max, *src),
        },
        Instr::Throw { msg } => DecodedOp::Throw {
            msg: Arc::from(msg.as_str()),
        },
        Instr::Nop => DecodedOp::Nop,
    }
}
