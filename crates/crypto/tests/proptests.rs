//! Property tests for the crypto primitives: whatever the pipeline seals
//! must open, derivations must be pure functions of their inputs, and hex
//! must be a lossless inverse pair.

use bombdroid_crypto::{aes, blob, hex, kdf, Key128};
use proptest::prelude::*;

proptest! {
    /// seal → open round-trips for arbitrary payloads and keys, and a
    /// single-bit key difference is rejected.
    #[test]
    fn blob_seal_open_roundtrip(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        flip_byte in 0usize..16usize,
        flip_bit in 0u8..8u8,
    ) {
        let sealed = blob::seal(&key, &payload);
        prop_assert_eq!(blob::open(&key, &sealed).expect("own key opens"), payload);

        let mut wrong: Key128 = key;
        wrong[flip_byte] ^= 1 << flip_bit;
        prop_assert!(blob::open(&wrong, &sealed).is_err(), "near-miss key must fail");
    }

    /// Sealing is deterministic (reproducible protection runs) and sealing
    /// under an explicit nonce round-trips too.
    #[test]
    fn blob_seal_is_deterministic(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        nonce in any::<u64>(),
    ) {
        prop_assert_eq!(blob::seal(&key, &payload), blob::seal(&key, &payload));
        let sealed = blob::seal_with_nonce(&key, nonce, &payload);
        prop_assert_eq!(blob::open(&key, &sealed).expect("opens"), payload);
    }

    /// KDF outputs depend on exactly (c, salt): same inputs agree, and the
    /// key / condition-hash domains never collide.
    #[test]
    fn kdf_is_deterministic_and_domain_separated(
        c in proptest::collection::vec(any::<u8>(), 0..64),
        salt in any::<[u8; 8]>(),
    ) {
        let m = kdf::site_material(&c, &salt);
        prop_assert_eq!(m.key, kdf::derive_key(&c, &salt));
        prop_assert_eq!(m.condition_hash, kdf::condition_hash(&c, &salt));
        prop_assert_ne!(&m.condition_hash[..16], &m.key[..], "domain separation");
    }

    /// Different salts give different keys (the anti-rainbow-table
    /// property §5.1) except for astronomically unlikely collisions.
    #[test]
    fn kdf_salt_changes_key(
        c in proptest::collection::vec(any::<u8>(), 1..64),
        salt_a in any::<[u8; 8]>(),
        salt_b in any::<[u8; 8]>(),
    ) {
        if salt_a != salt_b {
            prop_assert_ne!(kdf::derive_key(&c, &salt_a), kdf::derive_key(&c, &salt_b));
        }
    }

    /// hex decode(encode(x)) == x, and encode(decode(s)) == s for valid
    /// lowercase input.
    #[test]
    fn hex_encode_decode_inverse(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(encoded.len(), data.len() * 2);
        prop_assert_eq!(hex::decode(&encoded).expect("own output decodes"), data);
        prop_assert_eq!(hex::encode(&hex::decode(&encoded).unwrap()), encoded);
    }

    /// CTR is an involution under (key, nonce), and the schedule-reusing
    /// method matches the free function byte for byte.
    #[test]
    fn ctr_xor_involution_and_method_parity(
        key in any::<[u8; 16]>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut via_free = data.clone();
        aes::ctr_xor(&key, nonce, &mut via_free);
        let mut via_method = data.clone();
        aes::Aes128::new(&key).ctr_xor(nonce, &mut via_method);
        prop_assert_eq!(&via_free, &via_method, "method and free fn agree");
        aes::ctr_xor(&key, nonce, &mut via_free);
        prop_assert_eq!(via_free, data, "double application restores input");
    }
}
