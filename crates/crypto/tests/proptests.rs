//! Property tests for the crypto primitives: whatever the pipeline seals
//! must open, derivations must be pure functions of their inputs, and hex
//! must be a lossless inverse pair.

use bombdroid_crypto::{aes, blob, hex, kdf, sha1, sha256, Key128};
use proptest::prelude::*;

proptest! {
    /// seal → open round-trips for arbitrary payloads and keys, and a
    /// single-bit key difference is rejected.
    #[test]
    fn blob_seal_open_roundtrip(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        flip_byte in 0usize..16usize,
        flip_bit in 0u8..8u8,
    ) {
        let sealed = blob::seal(&key, &payload);
        prop_assert_eq!(blob::open(&key, &sealed).expect("own key opens"), payload);

        let mut wrong: Key128 = key;
        wrong[flip_byte] ^= 1 << flip_bit;
        prop_assert!(blob::open(&wrong, &sealed).is_err(), "near-miss key must fail");
    }

    /// Sealing is deterministic (reproducible protection runs) and sealing
    /// under an explicit nonce round-trips too.
    #[test]
    fn blob_seal_is_deterministic(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        nonce in any::<u64>(),
    ) {
        prop_assert_eq!(blob::seal(&key, &payload), blob::seal(&key, &payload));
        let sealed = blob::seal_with_nonce(&key, nonce, &payload);
        prop_assert_eq!(blob::open(&key, &sealed).expect("opens"), payload);
    }

    /// KDF outputs depend on exactly (c, salt): same inputs agree, and the
    /// key / condition-hash domains never collide.
    #[test]
    fn kdf_is_deterministic_and_domain_separated(
        c in proptest::collection::vec(any::<u8>(), 0..64),
        salt in any::<[u8; 8]>(),
    ) {
        let m = kdf::site_material(&c, &salt);
        prop_assert_eq!(m.key, kdf::derive_key(&c, &salt));
        prop_assert_eq!(m.condition_hash, kdf::condition_hash(&c, &salt));
        prop_assert_ne!(&m.condition_hash[..16], &m.key[..], "domain separation");
    }

    /// Different salts give different keys (the anti-rainbow-table
    /// property §5.1) except for astronomically unlikely collisions.
    #[test]
    fn kdf_salt_changes_key(
        c in proptest::collection::vec(any::<u8>(), 1..64),
        salt_a in any::<[u8; 8]>(),
        salt_b in any::<[u8; 8]>(),
    ) {
        if salt_a != salt_b {
            prop_assert_ne!(kdf::derive_key(&c, &salt_a), kdf::derive_key(&c, &salt_b));
        }
    }

    /// hex decode(encode(x)) == x, and encode(decode(s)) == s for valid
    /// lowercase input.
    #[test]
    fn hex_encode_decode_inverse(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(encoded.len(), data.len() * 2);
        prop_assert_eq!(hex::decode(&encoded).expect("own output decodes"), data);
        prop_assert_eq!(hex::encode(&hex::decode(&encoded).unwrap()), encoded);
    }

    /// CTR is an involution under (key, nonce), and the schedule-reusing
    /// method matches the free function byte for byte.
    #[test]
    fn ctr_xor_involution_and_method_parity(
        key in any::<[u8; 16]>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut via_free = data.clone();
        aes::ctr_xor(&key, nonce, &mut via_free);
        let mut via_method = data.clone();
        aes::Aes128::new(&key).ctr_xor(nonce, &mut via_method);
        prop_assert_eq!(&via_free, &via_method, "method and free fn agree");
        aes::ctr_xor(&key, nonce, &mut via_free);
        prop_assert_eq!(via_free, data, "double application restores input");
    }

    /// Multi-buffer SHA-256 matches the serial digest for every lane, for
    /// arbitrary lane counts (exercising the 4-wide kernel, the tail, and
    /// the empty batch) and arbitrary per-lane lengths (short, block-
    /// boundary, and multi-block messages all land in the same schedule).
    #[test]
    fn sha256_digest_many_matches_serial(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..11,
        ),
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let batched = sha256::digest_many(&refs);
        prop_assert_eq!(batched.len(), msgs.len());
        for (msg, got) in msgs.iter().zip(&batched) {
            prop_assert_eq!(got, &sha256::digest(msg), "lane diverged from serial");
        }
    }

    /// Same equivalence for multi-buffer SHA-1 (the manifest/nonce path).
    #[test]
    fn sha1_digest_many_matches_serial(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..11,
        ),
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let batched = sha1::digest_many(&refs);
        prop_assert_eq!(batched.len(), msgs.len());
        for (msg, got) in msgs.iter().zip(&batched) {
            prop_assert_eq!(got, &sha1::digest(msg), "lane diverged from serial");
        }
    }

    /// Batched AES-CTR across independent (key, nonce, buffer) streams is
    /// byte-identical to running each stream through the serial method —
    /// block interleaving across job boundaries must never leak keystream
    /// between jobs, whatever the buffer lengths (including empty and
    /// non-multiple-of-16 tails).
    #[test]
    fn ctr_xor_batch_matches_serial(
        jobs in proptest::collection::vec(
            (
                any::<[u8; 16]>(),
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 0..120),
            ),
            0..9,
        ),
    ) {
        let mut serial: Vec<Vec<u8>> = jobs.iter().map(|(k, n, d)| {
            let mut buf = d.clone();
            aes::ctr_xor(k, *n, &mut buf);
            buf
        }).collect();
        let schedules: Vec<aes::Aes128> =
            jobs.iter().map(|(k, _, _)| aes::Aes128::new(k)).collect();
        let mut batched: Vec<Vec<u8>> = jobs.iter().map(|(_, _, d)| d.clone()).collect();
        {
            let mut ctr_jobs: Vec<aes::CtrJob<'_>> = schedules
                .iter()
                .zip(jobs.iter())
                .zip(batched.iter_mut())
                .map(|((aes, (_, nonce, _)), data)| aes::CtrJob {
                    aes,
                    nonce: *nonce,
                    data,
                })
                .collect();
            aes::ctr_xor_batch(&mut ctr_jobs);
        }
        for (i, (b, s)) in batched.iter().zip(serial.iter()).enumerate() {
            prop_assert_eq!(b, s, "job {} diverged from serial CTR", i);
        }
        // And the batch is an involution too: a second batched pass over
        // the same streams restores every original buffer.
        {
            let mut ctr_jobs: Vec<aes::CtrJob<'_>> = schedules
                .iter()
                .zip(jobs.iter())
                .zip(serial.iter_mut())
                .map(|((aes, (_, nonce, _)), data)| aes::CtrJob {
                    aes,
                    nonce: *nonce,
                    data,
                })
                .collect();
            aes::ctr_xor_batch(&mut ctr_jobs);
        }
        for ((_, _, original), restored) in jobs.iter().zip(&serial) {
            prop_assert_eq!(original, restored, "double batch restores input");
        }
    }
}
