//! AES-128 (FIPS 197) and a CTR keystream mode.
//!
//! The paper encrypts each bomb's payload bytecode with AES-128 (§7.4);
//! [`ctr_xor`] provides the stream mode our sealed-blob format uses so
//! payloads of arbitrary length need no padding.

use crate::Key128;

/// Forward S-box, generated from the AES finite-field inverse + affine map.
const SBOX: [u8; 256] = build_sbox();

/// `x·2` and `x·3` in GF(2^8), precomputed so MixColumns is four table
/// lookups per byte instead of a bit-serial multiply.
const MUL2: [u8; 256] = build_mul_table(2);
const MUL3: [u8; 256] = build_mul_table(3);

const fn build_mul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = gf_mul(i as u8, factor);
        i += 1;
    }
    table
}

const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) by square-and-multiply.
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = gf_inv(i as u8);
        let mut x = inv;
        let mut y = inv;
        let mut j = 0;
        while j < 4 {
            y = y.rotate_left(1);
            x ^= y;
            j += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

/// An expanded AES-128 key schedule (11 round keys).
///
/// ```
/// use bombdroid_crypto::aes::Aes128;
/// let aes = Aes128::new(&[0u8; 16]);
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&ct),
///     "66e94bd4ef8a2c3b884cfa59ca342b2e",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: &Key128) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut tmp = w[i - 1];
            if i % 4 == 0 {
                tmp.rotate_left(1);
                for b in &mut tmp {
                    *b = SBOX[*b as usize];
                }
                tmp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ tmp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// XORs `data` in place with this key's CTR keystream for `nonce`.
    ///
    /// Equivalent to the free [`ctr_xor`], but reuses the already-expanded
    /// schedule — callers encrypting several buffers under one key (a
    /// sealed blob's ciphertext, its re-derived plaintext) pay for key
    /// expansion once.
    pub fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..8].copy_from_slice(&nonce.to_be_bytes());
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            counter_block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            let ks = self.encrypt_block(&counter_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// State layout: state[4*c + r] = byte at row r, column c (column-major as in FIPS 197).
fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = old[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = MUL2[col[0] as usize] ^ MUL3[col[1] as usize] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ MUL2[col[1] as usize] ^ MUL3[col[2] as usize] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ MUL2[col[2] as usize] ^ MUL3[col[3] as usize];
        state[4 * c + 3] = MUL3[col[0] as usize] ^ col[1] ^ col[2] ^ MUL2[col[3] as usize];
    }
}

/// XORs `data` in place with the AES-128-CTR keystream for (`key`, `nonce`).
///
/// Applying it twice with the same parameters round-trips, so it both
/// encrypts and decrypts:
///
/// ```
/// use bombdroid_crypto::aes::ctr_xor;
/// let key = [7u8; 16];
/// let mut data = b"logic bomb payload".to_vec();
/// ctr_xor(&key, 42, &mut data);
/// assert_ne!(&data, b"logic bomb payload");
/// ctr_xor(&key, 42, &mut data);
/// assert_eq!(&data, b"logic bomb payload");
/// ```
pub fn ctr_xor(key: &Key128, nonce: u64, data: &mut [u8]) {
    Aes128::new(key).ctr_xor(nonce, data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn fips197_appendix_b() {
        let key: Key128 = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(hex::encode(&ct), "3925841d02dc09fbdc118597196a0b32");
    }

    #[test]
    fn nist_sp800_38a_ecb_vector() {
        let key: Key128 = hex::decode_array("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let pt: [u8; 16] = hex::decode_array("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(hex::encode(&ct), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let key = [0xAB; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let mut data = original.clone();
            ctr_xor(&key, 99, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} must change");
            }
            ctr_xor(&key, 99, &mut data);
            assert_eq!(data, original, "len {len} must round-trip");
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; 16];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_xor(&key, 1, &mut a);
        ctr_xor(&key, 2, &mut b);
        assert_ne!(a, b);
    }
}
