//! AES-128 (FIPS 197) and a CTR keystream mode.
//!
//! The paper encrypts each bomb's payload bytecode with AES-128 (§7.4);
//! [`ctr_xor`] provides the stream mode our sealed-blob format uses so
//! payloads of arbitrary length need no padding.

use crate::Key128;

/// Forward S-box, generated from the AES finite-field inverse + affine map.
const SBOX: [u8; 256] = build_sbox();

/// `x·2` and `x·3` in GF(2^8), precomputed so MixColumns is four table
/// lookups per byte instead of a bit-serial multiply.
const MUL2: [u8; 256] = build_mul_table(2);
const MUL3: [u8; 256] = build_mul_table(3);

const fn build_mul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = gf_mul(i as u8, factor);
        i += 1;
    }
    table
}

const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) by square-and-multiply.
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = gf_inv(i as u8);
        let mut x = inv;
        let mut y = inv;
        let mut j = 0;
        while j < 4 {
            y = y.rotate_left(1);
            x ^= y;
            j += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

/// The classic T-tables: `TE0[x]` packs one SubBytes lookup fused with its
/// MixColumns column contribution into a single `u32` (little-endian bytes
/// `[2·S(x), S(x), S(x), 3·S(x)]`); `TE1..TE3` are its byte rotations for
/// rows 1–3. Four 1 KiB tables trade a little cache footprint for zero
/// rotate instructions in the round function.
const TE0: [u32; 256] = build_te(0);
const TE1: [u32; 256] = build_te(8);
const TE2: [u32; 256] = build_te(16);
const TE3: [u32; 256] = build_te(24);

const fn build_te(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = MUL2[SBOX[i] as usize] as u32;
        let s3 = MUL3[SBOX[i] as usize] as u32;
        t[i] = (s2 | (s << 8) | (s << 16) | (s3 << 24)).rotate_left(rot);
        i += 1;
    }
    t
}

/// An expanded AES-128 key schedule (11 round keys).
///
/// ```
/// use bombdroid_crypto::aes::Aes128;
/// let aes = Aes128::new(&[0u8; 16]);
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&ct),
///     "66e94bd4ef8a2c3b884cfa59ca342b2e",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// Round keys as little-endian column words (`rk[r][c]` covers state
    /// bytes `4c..4c+4` of round `r`), matching the T-table state layout.
    rk: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: &Key128) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut tmp = w[i - 1];
            if i % 4 == 0 {
                tmp.rotate_left(1);
                for b in &mut tmp {
                    *b = SBOX[*b as usize];
                }
                tmp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ tmp[j];
            }
        }
        let mut rk = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                rk[r][c] = u32::from_le_bytes(w[4 * r + c]);
            }
        }
        Aes128 { rk }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut cols = block_to_cols(block);
        for (col, k) in cols.iter_mut().zip(&self.rk[0]) {
            *col ^= *k;
        }
        for round in 1..10 {
            cols = aes_round(&cols, &self.rk[round]);
        }
        cols = aes_last_round(&cols, &self.rk[10]);
        cols_to_block(&cols)
    }

    /// XORs `data` in place with this key's CTR keystream for `nonce`.
    ///
    /// Equivalent to the free [`ctr_xor`], but reuses the already-expanded
    /// schedule — callers encrypting several buffers under one key (a
    /// sealed blob's ciphertext, its re-derived plaintext) pay for key
    /// expansion once.
    ///
    /// CTR counter blocks are mutually independent, so the bulk of the
    /// stream is produced four blocks at a time through the interleaved
    /// encryption ([`encrypt4_cols`]) — four live dependency chains instead
    /// of one, identical output bytes.
    pub fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        let mut block = 0u64;
        let mut quads = data.chunks_exact_mut(64);
        for quad in &mut quads {
            let states = core::array::from_fn(|l| counter_cols(nonce, block + l as u64));
            let ks = encrypt4_cols([&self.rk; 4], states);
            for (l, chunk) in quad.chunks_exact_mut(16).enumerate() {
                xor_cols(chunk, &ks[l]);
            }
            block += 4;
        }
        for chunk in quads.into_remainder().chunks_mut(16) {
            let mut cols = counter_cols(nonce, block);
            for (col, k) in cols.iter_mut().zip(&self.rk[0]) {
                *col ^= *k;
            }
            for round in 1..10 {
                cols = aes_round(&cols, &self.rk[round]);
            }
            cols = aes_last_round(&cols, &self.rk[10]);
            xor_cols(chunk, &cols);
            block += 1;
        }
    }
}

/// One independent CTR stream inside a [`ctr_xor_batch`] call.
pub struct CtrJob<'a> {
    /// Expanded schedule for this stream's key.
    pub aes: &'a Aes128,
    /// CTR nonce (the high 8 bytes of every counter block).
    pub nonce: u64,
    /// Buffer to XOR with the keystream in place.
    pub data: &'a mut [u8],
}

/// XORs several independent CTR streams in one pass, interleaving block
/// encryptions **across** streams: the flat sequence of counter blocks from
/// all jobs is encrypted four at a time regardless of job boundaries, so
/// even sub-64-byte buffers (a method's worth of small sealed payloads)
/// fill all four lanes. Each job's bytes are identical to what
/// [`Aes128::ctr_xor`] would produce for it alone.
pub fn ctr_xor_batch(jobs: &mut [CtrJob<'_>]) {
    let mut coords: Vec<(usize, u64)> = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        for b in 0..job.data.len().div_ceil(16) {
            coords.push((ji, b as u64));
        }
    }
    let mut quads = coords.chunks_exact(4);
    for quad in &mut quads {
        let states = core::array::from_fn(|l| counter_cols(jobs[quad[l].0].nonce, quad[l].1));
        let rks = core::array::from_fn(|l| &jobs[quad[l].0].aes.rk);
        let ks = encrypt4_cols(rks, states);
        for (l, &(ji, b)) in quad.iter().enumerate() {
            let off = b as usize * 16;
            let chunk = &mut jobs[ji].data[off..];
            let take = chunk.len().min(16);
            xor_cols(&mut chunk[..take], &ks[l]);
        }
    }
    for &(ji, b) in quads.remainder() {
        let job = &mut jobs[ji];
        let off = b as usize * 16;
        let end = (off + 16).min(job.data.len());
        let mut one = [0u8; 16];
        let len = end - off;
        one[..len].copy_from_slice(&job.data[off..end]);
        job.aes.ctr_xor_single_block(b, &mut one, job.nonce);
        job.data[off..end].copy_from_slice(&one[..len]);
    }
}

impl Aes128 {
    /// XORs one counter block's keystream into `chunk` (helper for the
    /// batch tail).
    fn ctr_xor_single_block(&self, block: u64, chunk: &mut [u8], nonce: u64) {
        let mut cols = counter_cols(nonce, block);
        for (col, k) in cols.iter_mut().zip(&self.rk[0]) {
            *col ^= *k;
        }
        for round in 1..10 {
            cols = aes_round(&cols, &self.rk[round]);
        }
        cols = aes_last_round(&cols, &self.rk[10]);
        xor_cols(chunk, &cols);
    }
}

// State layout: column-major as in FIPS 197 — byte `4c + r` is row `r` of
// column `c`; a column is one little-endian `u32`, so row `r` is bits
// `8r..8r+8` of the word.

#[inline(always)]
fn block_to_cols(block: &[u8; 16]) -> [u32; 4] {
    core::array::from_fn(|c| {
        u32::from_le_bytes([
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ])
    })
}

#[inline(always)]
fn cols_to_block(cols: &[u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (c, col) in cols.iter().enumerate() {
        out[4 * c..4 * c + 4].copy_from_slice(&col.to_le_bytes());
    }
    out
}

/// The CTR counter block `nonce ‖ block`, as state columns.
#[inline(always)]
fn counter_cols(nonce: u64, block: u64) -> [u32; 4] {
    let n = nonce.to_be_bytes();
    let b = block.to_be_bytes();
    [
        u32::from_le_bytes([n[0], n[1], n[2], n[3]]),
        u32::from_le_bytes([n[4], n[5], n[6], n[7]]),
        u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
    ]
}

#[inline(always)]
fn xor_cols(chunk: &mut [u8], cols: &[u32; 4]) {
    for (i, byte) in chunk.iter_mut().enumerate() {
        *byte ^= (cols[i / 4] >> (8 * (i % 4))) as u8;
    }
}

/// One full middle round: SubBytes + ShiftRows + MixColumns + AddRoundKey,
/// fused into four T-table lookups per column. Column `c`'s row-`r` input
/// comes from column `(c + r) % 4` (ShiftRows).
#[inline(always)]
fn aes_round(cols: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    core::array::from_fn(|c| {
        TE0[(cols[c] & 0xff) as usize]
            ^ TE1[((cols[(c + 1) % 4] >> 8) & 0xff) as usize]
            ^ TE2[((cols[(c + 2) % 4] >> 16) & 0xff) as usize]
            ^ TE3[(cols[(c + 3) % 4] >> 24) as usize]
            ^ rk[c]
    })
}

/// The final round (no MixColumns): plain S-box bytes through ShiftRows.
#[inline(always)]
fn aes_last_round(cols: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    core::array::from_fn(|c| {
        ((SBOX[(cols[c] & 0xff) as usize] as u32)
            | ((SBOX[((cols[(c + 1) % 4] >> 8) & 0xff) as usize] as u32) << 8)
            | ((SBOX[((cols[(c + 2) % 4] >> 16) & 0xff) as usize] as u32) << 16)
            | ((SBOX[(cols[(c + 3) % 4] >> 24) as usize] as u32) << 24))
            ^ rk[c]
    })
}

/// Encrypts four independent blocks in lockstep, each under its own
/// (possibly shared) schedule. Interleaving keeps four dependency chains in
/// flight through the table lookups, which a single-block encryption
/// serializes; the per-lane math is exactly [`Aes128::encrypt_block`]'s.
#[inline(always)]
fn encrypt4_cols(rks: [&[[u32; 4]; 11]; 4], mut states: [[u32; 4]; 4]) -> [[u32; 4]; 4] {
    for (st, rk) in states.iter_mut().zip(&rks) {
        for (col, k) in st.iter_mut().zip(&rk[0]) {
            *col ^= *k;
        }
    }
    for round in 1..10 {
        for (st, rk) in states.iter_mut().zip(&rks) {
            *st = aes_round(st, &rk[round]);
        }
    }
    for (st, rk) in states.iter_mut().zip(&rks) {
        *st = aes_last_round(st, &rk[10]);
    }
    states
}

/// XORs `data` in place with the AES-128-CTR keystream for (`key`, `nonce`).
///
/// Applying it twice with the same parameters round-trips, so it both
/// encrypts and decrypts:
///
/// ```
/// use bombdroid_crypto::aes::ctr_xor;
/// let key = [7u8; 16];
/// let mut data = b"logic bomb payload".to_vec();
/// ctr_xor(&key, 42, &mut data);
/// assert_ne!(&data, b"logic bomb payload");
/// ctr_xor(&key, 42, &mut data);
/// assert_eq!(&data, b"logic bomb payload");
/// ```
pub fn ctr_xor(key: &Key128, nonce: u64, data: &mut [u8]) {
    Aes128::new(key).ctr_xor(nonce, data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn fips197_appendix_b() {
        let key: Key128 = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(hex::encode(&ct), "3925841d02dc09fbdc118597196a0b32");
    }

    #[test]
    fn nist_sp800_38a_ecb_vector() {
        let key: Key128 = hex::decode_array("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let pt: [u8; 16] = hex::decode_array("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(hex::encode(&ct), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let key = [0xAB; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let mut data = original.clone();
            ctr_xor(&key, 99, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} must change");
            }
            ctr_xor(&key, 99, &mut data);
            assert_eq!(data, original, "len {len} must round-trip");
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; 16];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_xor(&key, 1, &mut a);
        ctr_xor(&key, 2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_keystream_pinned() {
        // First 100 keystream bytes captured from the pre-T-table bytewise
        // implementation: any change to these bytes would silently re-seal
        // every blob in existing protected apps.
        let key: Key128 = hex::decode_array("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let mut data = vec![0u8; 100];
        ctr_xor(&key, 0x0123_4567_89ab_cdef, &mut data);
        assert_eq!(
            hex::encode(&data),
            "1c637afb6fe7f151e785d538d212e9c541a42a140ba338326f58cb81776e1860\
             44e44ffabf6bb262a77a84b64307c791437c42546b109443abed3d35267d612a\
             e6cfeccb78c60ab8e60764dac59ff0f021b702e19c86746cec839bcc6b9ff7c2\
             8a9303fa"
        );
    }

    #[test]
    fn ctr_batch_matches_serial() {
        let keys: Vec<Key128> = (0..5u8)
            .map(|i| [i.wrapping_mul(29).wrapping_add(3); 16])
            .collect();
        let lens = [0usize, 7, 16, 65, 400];
        let originals: Vec<Vec<u8>> = lens
            .iter()
            .map(|&n| (0..n).map(|i| (i * 11 + 5) as u8).collect())
            .collect();
        let mut expected = originals.clone();
        let schedules: Vec<Aes128> = keys.iter().map(Aes128::new).collect();
        for (i, buf) in expected.iter_mut().enumerate() {
            schedules[i].ctr_xor(1000 + i as u64, buf);
        }
        let mut batched = originals.clone();
        let mut jobs: Vec<CtrJob<'_>> = batched
            .iter_mut()
            .enumerate()
            .map(|(i, data)| CtrJob {
                aes: &schedules[i],
                nonce: 1000 + i as u64,
                data,
            })
            .collect();
        ctr_xor_batch(&mut jobs);
        assert_eq!(batched, expected);
    }
}
