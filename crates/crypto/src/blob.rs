//! Authenticated sealed blobs: the on-disk form of encrypted bomb payloads.
//!
//! The paper stores each bomb's payload "encrypted into a string, which is
//! inserted into the app code" and decrypted at runtime only when the trigger
//! constant re-derives the key (§7.5). Decrypting with a wrong key must
//! *fail detectably* — otherwise an attacker could force the branch and
//! execute garbage — so blobs are encrypt-then-MAC:
//!
//! ```text
//! nonce(8) ‖ ciphertext ‖ tag(20)
//! tag = SHA1(mac-domain ‖ key ‖ nonce ‖ ciphertext)
//! ```

use crate::{aes, sha1, Key128};
use std::fmt;

const MAC_DOMAIN: &[u8] = b"bombdroid/mac/v1";
const NONCE_LEN: usize = 8;
const TAG_LEN: usize = 20;

/// Error returned by [`open`] when a blob cannot be authenticated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenError {
    /// The blob is shorter than the fixed framing (nonce + tag).
    Truncated {
        /// Actual byte length of the rejected blob.
        len: usize,
    },
    /// The MAC did not verify: wrong key or tampered ciphertext.
    BadTag,
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenError::Truncated { len } => write!(
                f,
                "sealed blob of {len} bytes is shorter than framing ({} bytes)",
                NONCE_LEN + TAG_LEN
            ),
            OpenError::BadTag => write!(f, "authentication tag mismatch (wrong key or tampering)"),
        }
    }
}

impl std::error::Error for OpenError {}

fn mac(key: &Key128, nonce: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut h = sha1::Sha1::new();
    h.update(MAC_DOMAIN);
    h.update(key);
    h.update(nonce);
    h.update(ciphertext);
    h.finalize()
}

/// Seals `plaintext` under `key` with a nonce derived from the payload
/// (deterministic so protection runs are reproducible; every bomb uses a
/// distinct key, which is what guarantees keystream uniqueness).
pub fn seal(key: &Key128, plaintext: &[u8]) -> Vec<u8> {
    let nonce_digest = sha1::digest(plaintext);
    let nonce = u64::from_be_bytes(nonce_digest[..8].try_into().expect("8 bytes"));
    seal_with_nonce(key, nonce, plaintext)
}

/// Seals `plaintext` under `key` with an explicit CTR nonce.
pub fn seal_with_nonce(key: &Key128, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    let nonce_bytes = nonce.to_be_bytes();
    // One exact-size allocation: encrypt the payload in place inside the
    // output frame rather than through an intermediate ciphertext buffer.
    let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
    out.extend_from_slice(&nonce_bytes);
    out.extend_from_slice(plaintext);
    aes::ctr_xor(key, nonce, &mut out[NONCE_LEN..]);
    let tag = mac(key, &nonce_bytes, &out[NONCE_LEN..]);
    out.extend_from_slice(&tag);
    out
}

/// Seals many `(key, plaintext)` pairs in one pass, producing exactly the
/// blobs [`seal`] would emit for each pair in order.
///
/// The serial path alternates SHA-1 (nonce), AES-CTR (encrypt), SHA-1
/// (MAC) per blob; the batch path expands every schedule up front and runs
/// all CTR streams through [`aes::ctr_xor_batch`], which interleaves block
/// encryptions across blobs — four lanes stay full even when individual
/// payloads are a block or two long, as a method's bomb payloads usually
/// are.
pub fn seal_batch(jobs: &[(Key128, &[u8])]) -> Vec<Vec<u8>> {
    // Derive all nonces through the four-lane SHA-1, then frame every
    // output buffer.
    let plaintexts: Vec<&[u8]> = jobs.iter().map(|(_, p)| *p).collect();
    let nonce_digests = sha1::digest_many(&plaintexts);
    let mut outs: Vec<Vec<u8>> = Vec::with_capacity(jobs.len());
    let mut nonces: Vec<u64> = Vec::with_capacity(jobs.len());
    for ((_, plaintext), nonce_digest) in jobs.iter().zip(&nonce_digests) {
        let nonce = u64::from_be_bytes(nonce_digest[..8].try_into().expect("8 bytes"));
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
        out.extend_from_slice(&nonce.to_be_bytes());
        out.extend_from_slice(plaintext);
        nonces.push(nonce);
        outs.push(out);
    }
    // Encrypt all payloads block-parallel across blobs.
    let schedules: Vec<aes::Aes128> = jobs.iter().map(|(k, _)| aes::Aes128::new(k)).collect();
    let mut ctr_jobs: Vec<aes::CtrJob<'_>> = outs
        .iter_mut()
        .enumerate()
        .map(|(i, out)| aes::CtrJob {
            aes: &schedules[i],
            nonce: nonces[i],
            data: &mut out[NONCE_LEN..],
        })
        .collect();
    aes::ctr_xor_batch(&mut ctr_jobs);
    drop(ctr_jobs);
    // Authenticate, batching the MAC hashes four-lane as well. The MAC
    // input is materialized per blob (domain ‖ key ‖ nonce ‖ ciphertext) —
    // a short copy, dwarfed by the hashing it unlocks — and the resulting
    // tag is identical to the incremental [`mac`] of the same parts.
    let mac_inputs: Vec<Vec<u8>> = outs
        .iter()
        .enumerate()
        .map(|(i, out)| {
            let ct = &out[NONCE_LEN..];
            let mut buf = Vec::with_capacity(MAC_DOMAIN.len() + 16 + NONCE_LEN + ct.len());
            buf.extend_from_slice(MAC_DOMAIN);
            buf.extend_from_slice(&jobs[i].0);
            buf.extend_from_slice(&nonces[i].to_be_bytes());
            buf.extend_from_slice(ct);
            buf
        })
        .collect();
    let mac_refs: Vec<&[u8]> = mac_inputs.iter().map(|b| b.as_slice()).collect();
    let tags = sha1::digest_many(&mac_refs);
    for (out, tag) in outs.iter_mut().zip(&tags) {
        out.extend_from_slice(tag);
    }
    outs
}

/// Opens a sealed blob, authenticating before decrypting.
///
/// # Errors
///
/// * [`OpenError::Truncated`] if `blob` is shorter than the framing.
/// * [`OpenError::BadTag`] if the key is wrong or the blob was modified —
///   this is what an attacker forcing a trigger condition observes.
pub fn open(key: &Key128, blob: &[u8]) -> Result<Vec<u8>, OpenError> {
    if blob.len() < NONCE_LEN + TAG_LEN {
        return Err(OpenError::Truncated { len: blob.len() });
    }
    let (nonce_bytes, rest) = blob.split_at(NONCE_LEN);
    let (ct, tag) = rest.split_at(rest.len() - TAG_LEN);
    let expected = mac(key, nonce_bytes, ct);
    // Constant-time-ish comparison; timing is irrelevant in the simulation
    // but it documents intent.
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(OpenError::BadTag);
    }
    let nonce = u64::from_be_bytes(nonce_bytes.try_into().expect("8 bytes"));
    let mut pt = ct.to_vec();
    aes::ctr_xor(key, nonce, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key128 = [9u8; 16];

    #[test]
    fn roundtrip() {
        for len in [0usize, 1, 16, 17, 100, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let blob = seal(&KEY, &pt);
            assert_eq!(open(&KEY, &blob).unwrap(), pt);
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let blob = seal(&KEY, b"payload");
        let wrong = [8u8; 16];
        assert_eq!(open(&wrong, &blob), Err(OpenError::BadTag));
    }

    #[test]
    fn tampering_rejected() {
        let blob = seal(&KEY, b"payload bytes here");
        for i in 0..blob.len() {
            let mut t = blob.clone();
            t[i] ^= 1;
            assert!(open(&KEY, &t).is_err(), "flip at {i} must be caught");
        }
    }

    #[test]
    fn truncated_rejected() {
        let blob = seal(&KEY, b"x");
        assert!(matches!(
            open(&KEY, &blob[..NONCE_LEN + TAG_LEN - 1]),
            Err(OpenError::Truncated { .. })
        ));
    }

    #[test]
    fn deterministic_for_reproducible_builds() {
        assert_eq!(seal(&KEY, b"same payload"), seal(&KEY, b"same payload"));
    }

    #[test]
    fn seal_batch_matches_serial() {
        let payloads: Vec<Vec<u8>> = [0usize, 3, 16, 31, 400, 64]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7 + 1) as u8).collect())
            .collect();
        let jobs: Vec<(Key128, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| ([i as u8 + 1; 16], p.as_slice()))
            .collect();
        let batched = seal_batch(&jobs);
        for (i, (key, pt)) in jobs.iter().enumerate() {
            assert_eq!(batched[i], seal(key, pt), "blob {i}");
            assert_eq!(open(key, &batched[i]).unwrap(), *pt, "blob {i} opens");
        }
    }

    #[test]
    fn seal_batch_empty_and_single() {
        assert!(seal_batch(&[]).is_empty());
        let one = seal_batch(&[(KEY, b"solo".as_slice())]);
        assert_eq!(one[0], seal(&KEY, b"solo"));
    }
}
