//! SHA-256 (FIPS 180-4).
//!
//! Used by the APK substrate for MANIFEST.MF entry digests and by the
//! code-snippet-scanning detection method, mirroring how real Android
//! packaging records `SHA-256-Digest` per entry.

use crate::lanes::U32x4;
use crate::Digest256;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use bombdroid_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation and returns the 256-bit digest.
    pub fn finalize(mut self) -> Digest256 {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        // One FIPS round with explicit register roles. Unrolling eight
        // rounds with rotated register names (below) removes the per-round
        // eight-way variable shuffle of the naive loop, which the compiler
        // does not eliminate on its own.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ ((!$e) & $g);
                let t1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            };
        }
        let mut i = 0;
        while i < 64 {
            round!(a, b, c, d, e, f, g, h, i);
            round!(h, a, b, c, d, e, f, g, i + 1);
            round!(g, h, a, b, c, d, e, f, i + 2);
            round!(f, g, h, a, b, c, d, e, i + 3);
            round!(e, f, g, h, a, b, c, d, i + 4);
            round!(d, e, f, g, h, a, b, c, i + 5);
            round!(c, d, e, f, g, h, a, b, i + 6);
            round!(b, c, d, e, f, g, h, a, i + 7);
            i += 8;
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// let d = bombdroid_crypto::sha256::digest(b"");
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&d),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn digest(data: &[u8]) -> Digest256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ------------------------------------------------------------ multi-buffer --

const INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Number of lanes the interleaved compression processes at once.
pub const MB_LANES: usize = crate::lanes::MB_LANES;

/// One interleaved compression over four independent 64-byte blocks.
/// Identical round algebra to [`Sha256::compress`], with every variable
/// widened to four lanes.
fn compress4(states: &mut [[u32; 8]; 4], blocks: [&[u8]; 4]) {
    let mut w = [U32x4::splat(0); 64];
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        *wi = U32x4(core::array::from_fn(|l| {
            let c = &blocks[l][4 * i..4 * i + 4];
            u32::from_be_bytes([c[0], c[1], c[2], c[3]])
        }));
    }
    for i in 16..64 {
        let s0 = w[i - 15]
            .rotr(7)
            .xor(w[i - 15].rotr(18))
            .xor(w[i - 15].shr(3));
        let s1 = w[i - 2]
            .rotr(17)
            .xor(w[i - 2].rotr(19))
            .xor(w[i - 2].shr(10));
        w[i] = w[i - 16].add(s0).add(w[i - 7]).add(s1);
    }
    let mut v: [U32x4; 8] = core::array::from_fn(|r| U32x4(core::array::from_fn(|l| states[l][r])));
    macro_rules! round4 {
        ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr, $f:expr, $g:expr, $h:expr, $i:expr) => {
            let s1 = v[$e].rotr(6).xor(v[$e].rotr(11)).xor(v[$e].rotr(25));
            let ch = v[$e].and(v[$f]).xor(v[$e].andnot(v[$g]));
            let t1 = v[$h].add(s1).add(ch).add(U32x4::splat(K[$i])).add(w[$i]);
            let s0 = v[$a].rotr(2).xor(v[$a].rotr(13)).xor(v[$a].rotr(22));
            let maj = v[$a].and(v[$b]).xor(v[$a].and(v[$c])).xor(v[$b].and(v[$c]));
            v[$d] = v[$d].add(t1);
            v[$h] = t1.add(s0.add(maj));
        };
    }
    let mut i = 0;
    while i < 64 {
        round4!(0, 1, 2, 3, 4, 5, 6, 7, i);
        round4!(7, 0, 1, 2, 3, 4, 5, 6, i + 1);
        round4!(6, 7, 0, 1, 2, 3, 4, 5, i + 2);
        round4!(5, 6, 7, 0, 1, 2, 3, 4, i + 3);
        round4!(4, 5, 6, 7, 0, 1, 2, 3, i + 4);
        round4!(3, 4, 5, 6, 7, 0, 1, 2, i + 5);
        round4!(2, 3, 4, 5, 6, 7, 0, 1, i + 6);
        round4!(1, 2, 3, 4, 5, 6, 7, 0, i + 7);
        i += 8;
    }
    for (l, state) in states.iter_mut().enumerate() {
        for (r, s) in state.iter_mut().enumerate() {
            *s = s.wrapping_add(v[r].0[l]);
        }
    }
}

/// Hashes four messages at once by interleaving their message schedules
/// through one compression loop ([`MB_LANES`] lanes).
///
/// Messages may differ in length: lanes advance in lockstep for as many
/// whole 64-byte blocks as the *shortest* message holds, then each lane's
/// tail (remaining blocks plus padding) finishes through the scalar
/// [`Sha256`] path. The result is bit-identical to hashing each message
/// with [`digest`].
pub fn digest4(msgs: [&[u8]; 4]) -> [Digest256; 4] {
    let common = msgs.iter().map(|m| m.len() / 64).min().unwrap_or(0);
    let mut states = [INIT; 4];
    for b in 0..common {
        compress4(
            &mut states,
            core::array::from_fn(|l| &msgs[l][b * 64..b * 64 + 64]),
        );
    }
    core::array::from_fn(|l| {
        let mut h = Sha256 {
            state: states[l],
            len: (common * 64) as u64,
            buf: [0u8; 64],
            buf_len: 0,
        };
        h.update(&msgs[l][common * 64..]);
        h.finalize()
    })
}

/// Hashes a batch of messages, using the interleaved four-lane compression
/// for every full group of four and the scalar path for the remainder.
/// Output order matches input order; every digest is bit-identical to the
/// serial [`digest`] of the same message.
pub fn digest_many(msgs: &[&[u8]]) -> Vec<Digest256> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut groups = msgs.chunks_exact(4);
    for g in &mut groups {
        out.extend(digest4([g[0], g[1], g[2], g[3]]));
    }
    for m in groups.remainder() {
        out.push(digest(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex::encode(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex::encode(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex::encode(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..200u8).cycle().take(4097).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 2048, 4096, 4097] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest4_matches_serial_equal_lengths() {
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|l| vec![l.wrapping_mul(17); 256]).collect();
        let lanes: [&[u8]; 4] = core::array::from_fn(|l| msgs[l].as_slice());
        let got = digest4(lanes);
        for l in 0..4 {
            assert_eq!(got[l], digest(&msgs[l]), "lane {l}");
        }
    }

    #[test]
    fn digest4_matches_serial_ragged_lengths() {
        let msgs: Vec<Vec<u8>> = [0usize, 63, 64, 911]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 31 + 7) as u8).collect())
            .collect();
        let lanes: [&[u8]; 4] = core::array::from_fn(|l| msgs[l].as_slice());
        let got = digest4(lanes);
        for l in 0..4 {
            assert_eq!(got[l], digest(&msgs[l]), "lane {l}");
        }
    }

    #[test]
    fn digest_many_matches_serial_any_count() {
        for count in 0..9usize {
            let msgs: Vec<Vec<u8>> = (0..count)
                .map(|i| (0..i * 37 + 5).map(|j| (i * 13 + j) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let got = digest_many(&refs);
            assert_eq!(got.len(), count);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(got[i], digest(m), "count {count} msg {i}");
            }
        }
    }
}
