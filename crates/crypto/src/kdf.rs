//! Key derivation: the paper's `key = Hash(c | S)` (§7.4).
//!
//! A trigger constant `c` of arbitrary size is mixed with a per-bomb salt
//! `S` and hashed into a uniform 128-bit AES key. The salt also defeats
//! rainbow-table attacks against the stored condition hashes (§5.1).

use crate::{sha1, Digest160, Key128};

/// Domain separator so condition hashes and encryption keys derived from the
/// same `(c, salt)` pair are unrelated values.
const KEY_DOMAIN: &[u8] = b"bombdroid/key/v1";
const COND_DOMAIN: &[u8] = b"bombdroid/cond/v1";

/// Derives the 128-bit payload-encryption key from trigger constant `c` and
/// per-bomb salt, truncating `Hash(domain|c|salt)` to 16 bytes.
///
/// ```
/// use bombdroid_crypto::kdf::derive_key;
/// let k1 = derive_key(b"secret-constant", b"salt-a");
/// let k2 = derive_key(b"secret-constant", b"salt-b");
/// assert_ne!(k1, k2, "different salts must give different keys");
/// ```
pub fn derive_key(c: &[u8], salt: &[u8]) -> Key128 {
    let mut h = sha1::Sha1::new();
    h.update(KEY_DOMAIN);
    h.update(&(c.len() as u64).to_be_bytes());
    h.update(c);
    h.update(salt);
    let digest = h.finalize();
    let mut key = [0u8; 16];
    key.copy_from_slice(&digest[..16]);
    key
}

/// Computes the stored *condition hash* `Hc = Hash(c | salt)` that replaces
/// the plaintext comparison `X == c` in an obfuscated trigger condition.
///
/// ```
/// use bombdroid_crypto::kdf::condition_hash;
/// let hc = condition_hash(b"0xfff000", b"salt");
/// assert_eq!(hc, condition_hash(b"0xfff000", b"salt"));
/// assert_ne!(hc, condition_hash(b"0xfff000", b"other-salt"));
/// ```
pub fn condition_hash(c: &[u8], salt: &[u8]) -> Digest160 {
    let mut h = sha1::Sha1::new();
    h.update(COND_DOMAIN);
    h.update(&(c.len() as u64).to_be_bytes());
    h.update(c);
    h.update(salt);
    h.finalize()
}

/// Everything a bomb site derives from its `(c, salt)` pair: the stored
/// condition hash and the payload-encryption key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMaterial {
    /// Payload-encryption key, as from [`derive_key`].
    pub key: Key128,
    /// Stored condition hash, as from [`condition_hash`].
    pub condition_hash: Digest160,
}

/// Derives both per-site values in one call so arming a bomb serializes
/// the trigger constant once instead of once per derivation. Identical
/// output to calling [`derive_key`] and [`condition_hash`] separately.
pub fn site_material(c: &[u8], salt: &[u8]) -> SiteMaterial {
    SiteMaterial {
        key: derive_key(c, salt),
        condition_hash: condition_hash(c, salt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_and_condition_hash_are_domain_separated() {
        let key = derive_key(b"c", b"s");
        let cond = condition_hash(b"c", b"s");
        assert_ne!(&cond[..16], &key[..], "domains must not collide");
    }

    #[test]
    fn length_prefix_prevents_boundary_ambiguity() {
        // (c="ab", salt="c") must differ from (c="a", salt="bc").
        assert_ne!(derive_key(b"ab", b"c"), derive_key(b"a", b"bc"));
        assert_ne!(condition_hash(b"ab", b"c"), condition_hash(b"a", b"bc"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(derive_key(b"x", b"y"), derive_key(b"x", b"y"));
    }

    #[test]
    fn site_material_matches_individual_derivations() {
        let m = site_material(b"trigger-const", b"salt8byt");
        assert_eq!(m.key, derive_key(b"trigger-const", b"salt8byt"));
        assert_eq!(
            m.condition_hash,
            condition_hash(b"trigger-const", b"salt8byt")
        );
    }
}
