//! Four-lane `u32` vector for multi-buffer hashing.
//!
//! `#![forbid(unsafe_code)]` rules out explicit SIMD intrinsics, so the
//! interleaved SHA paths express lane math as element-wise operations over
//! a fixed-width array; the operations are all vertical (no cross-lane
//! shuffles), so the compiler lowers the lane loops to 128-bit vector ops.

/// Lanes per multi-buffer group.
pub(crate) const MB_LANES: usize = 4;

/// Four `u32` values processed in lockstep.
#[derive(Copy, Clone)]
pub(crate) struct U32x4(pub(crate) [u32; MB_LANES]);

impl U32x4 {
    #[inline(always)]
    pub(crate) fn splat(v: u32) -> Self {
        U32x4([v; MB_LANES])
    }
    #[inline(always)]
    pub(crate) fn add(self, o: Self) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
    }
    #[inline(always)]
    pub(crate) fn xor(self, o: Self) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i] ^ o.0[i]))
    }
    #[inline(always)]
    pub(crate) fn and(self, o: Self) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i] & o.0[i]))
    }
    #[inline(always)]
    pub(crate) fn or(self, o: Self) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i] | o.0[i]))
    }
    /// `(!self) & o` — the second half of the FIPS `Ch` function.
    #[inline(always)]
    pub(crate) fn andnot(self, o: Self) -> Self {
        U32x4(core::array::from_fn(|i| !self.0[i] & o.0[i]))
    }
    #[inline(always)]
    pub(crate) fn rotl(self, n: u32) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i].rotate_left(n)))
    }
    #[inline(always)]
    pub(crate) fn rotr(self, n: u32) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i].rotate_right(n)))
    }
    #[inline(always)]
    pub(crate) fn shr(self, n: u32) -> Self {
        U32x4(core::array::from_fn(|i| self.0[i] >> n))
    }
}
