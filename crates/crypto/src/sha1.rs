//! SHA-1 (FIPS 180-4).
//!
//! The paper calls this "SHA-128" (§7.4) and uses it both to obfuscate
//! trigger conditions (`Hash(X) == Hc`) and, salted, to derive bomb keys.
//! SHA-1 is no longer collision-resistant, but the properties the paper's
//! security argument rests on — one-wayness and second-preimage resistance
//! against the attacker's constraint solvers — still hold in practice and
//! are what our symbolic-execution substrate models as "uninterpretable".

use crate::Digest160;

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use bombdroid_crypto::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&h.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation and returns the 160-bit digest.
    pub fn finalize(mut self) -> Digest160 {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
///
/// ```
/// let d = bombdroid_crypto::sha1::digest(b"");
/// assert_eq!(bombdroid_crypto::hex::encode(&d), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
/// ```
pub fn digest(data: &[u8]) -> Digest160 {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hx(data: &[u8]) -> String {
        hex::encode(&digest(data))
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hx(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hx(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hx(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex::encode(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        for split in [0usize, 1, 63, 64, 65, 1000, 4999, 5000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn paper_example_condition_hash() {
        // The paper's running example stores Hash(c) for c = "mMode value";
        // verify the digest is stable so trigger conditions are deterministic.
        let first = digest(b"0xfff000|salt");
        let second = digest(b"0xfff000|salt");
        assert_eq!(first, second);
        assert_ne!(first, digest(b"0xfff001|salt"));
    }
}
