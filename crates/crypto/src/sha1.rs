//! SHA-1 (FIPS 180-4).
//!
//! The paper calls this "SHA-128" (§7.4) and uses it both to obfuscate
//! trigger conditions (`Hash(X) == Hc`) and, salted, to derive bomb keys.
//! SHA-1 is no longer collision-resistant, but the properties the paper's
//! security argument rests on — one-wayness and second-preimage resistance
//! against the attacker's constraint solvers — still hold in practice and
//! are what our symbolic-execution substrate models as "uninterpretable".

use crate::lanes::U32x4;
use crate::Digest160;

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use bombdroid_crypto::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     bombdroid_crypto::hex::encode(&h.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation and returns the 160-bit digest.
    pub fn finalize(mut self) -> Digest160 {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        // One round with explicit register roles: accumulate into `e` and
        // rotate `b` in place, then rotate the role names for the next
        // round. Five-round unrolling plus one constant `f`/`k` per stage
        // removes both the five-way shuffle and the per-round range match
        // of the naive loop.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:expr, $k:expr, $i:expr) => {
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add($f)
                    .wrapping_add($k)
                    .wrapping_add(w[$i]);
                $b = $b.rotate_left(30);
            };
        }
        macro_rules! stage {
            ($f:expr, $k:expr, $base:expr) => {
                let mut i = $base;
                while i < $base + 20 {
                    macro_rules! f {
                        ($fb:ident, $fc:ident, $fd:ident) => {
                            $f($fb, $fc, $fd)
                        };
                    }
                    round!(a, b, c, d, e, f!(b, c, d), $k, i);
                    round!(e, a, b, c, d, f!(a, b, c), $k, i + 1);
                    round!(d, e, a, b, c, f!(e, a, b), $k, i + 2);
                    round!(c, d, e, a, b, f!(d, e, a), $k, i + 3);
                    round!(b, c, d, e, a, f!(c, d, e), $k, i + 4);
                    i += 5;
                }
            };
        }
        stage!(|x: u32, y: u32, z: u32| (x & y) | (!x & z), 0x5a82_7999, 0);
        stage!(|x: u32, y: u32, z: u32| x ^ y ^ z, 0x6ed9_eba1, 20);
        stage!(
            |x: u32, y: u32, z: u32| (x & y) | (x & z) | (y & z),
            0x8f1b_bcdc,
            40
        );
        stage!(|x: u32, y: u32, z: u32| x ^ y ^ z, 0xca62_c1d6, 60);
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
///
/// ```
/// let d = bombdroid_crypto::sha1::digest(b"");
/// assert_eq!(bombdroid_crypto::hex::encode(&d), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
/// ```
pub fn digest(data: &[u8]) -> Digest160 {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

// ------------------------------------------------------------ multi-buffer --

const INIT: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// One interleaved compression over four independent 64-byte blocks.
/// Identical round algebra to [`Sha1::compress`], with every variable
/// widened to four lanes.
fn compress4(states: &mut [[u32; 5]; 4], blocks: [&[u8]; 4]) {
    let mut w = [U32x4::splat(0); 80];
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        *wi = U32x4(core::array::from_fn(|l| {
            let c = &blocks[l][4 * i..4 * i + 4];
            u32::from_be_bytes([c[0], c[1], c[2], c[3]])
        }));
    }
    for i in 16..80 {
        w[i] = w[i - 3].xor(w[i - 8]).xor(w[i - 14]).xor(w[i - 16]).rotl(1);
    }
    let [mut a, mut b, mut c, mut d, mut e]: [U32x4; 5] =
        core::array::from_fn(|r| U32x4(core::array::from_fn(|l| states[l][r])));
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:expr, $k:expr, $i:expr) => {
            $e = $e.add($a.rotl(5)).add($f).add(U32x4::splat($k)).add(w[$i]);
            $b = $b.rotl(30);
        };
    }
    macro_rules! stage {
        ($f:expr, $k:expr, $base:expr) => {
            let mut i = $base;
            while i < $base + 20 {
                macro_rules! f {
                    ($fb:ident, $fc:ident, $fd:ident) => {
                        $f($fb, $fc, $fd)
                    };
                }
                round!(a, b, c, d, e, f!(b, c, d), $k, i);
                round!(e, a, b, c, d, f!(a, b, c), $k, i + 1);
                round!(d, e, a, b, c, f!(e, a, b), $k, i + 2);
                round!(c, d, e, a, b, f!(d, e, a), $k, i + 3);
                round!(b, c, d, e, a, f!(c, d, e), $k, i + 4);
                i += 5;
            }
        };
    }
    stage!(
        |x: U32x4, y: U32x4, z: U32x4| x.and(y).or(x.andnot(z)),
        0x5a82_7999,
        0
    );
    stage!(
        |x: U32x4, y: U32x4, z: U32x4| x.xor(y).xor(z),
        0x6ed9_eba1,
        20
    );
    stage!(
        |x: U32x4, y: U32x4, z: U32x4| x.and(y).or(x.and(z)).or(y.and(z)),
        0x8f1b_bcdc,
        40
    );
    stage!(
        |x: U32x4, y: U32x4, z: U32x4| x.xor(y).xor(z),
        0xca62_c1d6,
        60
    );
    let v = [a, b, c, d, e];
    for (l, state) in states.iter_mut().enumerate() {
        for (r, s) in state.iter_mut().enumerate() {
            *s = s.wrapping_add(v[r].0[l]);
        }
    }
}

/// Hashes four messages at once by interleaving their message schedules
/// through one compression loop.
///
/// Messages may differ in length: lanes advance in lockstep for as many
/// whole 64-byte blocks as the *shortest* message holds, then each lane's
/// tail (remaining blocks plus padding) finishes through the scalar
/// [`Sha1`] path. The result is bit-identical to hashing each message with
/// [`digest`].
pub fn digest4(msgs: [&[u8]; 4]) -> [Digest160; 4] {
    let common = msgs.iter().map(|m| m.len() / 64).min().unwrap_or(0);
    let mut states = [INIT; 4];
    for b in 0..common {
        compress4(
            &mut states,
            core::array::from_fn(|l| &msgs[l][b * 64..b * 64 + 64]),
        );
    }
    core::array::from_fn(|l| {
        let mut h = Sha1 {
            state: states[l],
            len: (common * 64) as u64,
            buf: [0u8; 64],
            buf_len: 0,
        };
        h.update(&msgs[l][common * 64..]);
        h.finalize()
    })
}

/// Hashes a batch of messages, using the interleaved four-lane compression
/// for every full group of four and the scalar path for the remainder.
/// Output order matches input order; every digest is bit-identical to the
/// serial [`digest`] of the same message.
pub fn digest_many(msgs: &[&[u8]]) -> Vec<Digest160> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut groups = msgs.chunks_exact(4);
    for g in &mut groups {
        out.extend(digest4([g[0], g[1], g[2], g[3]]));
    }
    for m in groups.remainder() {
        out.push(digest(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hx(data: &[u8]) -> String {
        hex::encode(&digest(data))
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hx(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hx(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hx(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex::encode(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        for split in [0usize, 1, 63, 64, 65, 1000, 4999, 5000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest4_matches_serial_ragged_lengths() {
        let msgs: Vec<Vec<u8>> = [0usize, 63, 64, 911]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7) as u8).collect())
            .collect();
        let got = digest4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (m, d) in msgs.iter().zip(got) {
            assert_eq!(d, digest(m), "len {}", m.len());
        }
    }

    #[test]
    fn digest_many_matches_serial_any_count() {
        for n in 0..9usize {
            let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 37 * i + 1]).collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let got = digest_many(&refs);
            for (m, d) in msgs.iter().zip(got) {
                assert_eq!(d, digest(m));
            }
        }
    }

    #[test]
    fn paper_example_condition_hash() {
        // The paper's running example stores Hash(c) for c = "mMode value";
        // verify the digest is stable so trigger conditions are deterministic.
        let first = digest(b"0xfff000|salt");
        let second = digest(b"0xfff000|salt");
        assert_eq!(first, second);
        assert_ne!(first, digest(b"0xfff001|salt"));
    }
}
