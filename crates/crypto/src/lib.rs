//! From-scratch cryptographic primitives for BombDroid-rs.
//!
//! The CGO'18 paper uses "SHA-128" (i.e. SHA-1) for trigger-condition
//! obfuscation and AES-128 for payload encryption, with the encryption key
//! derived as `key = Hash(c | salt)` from the trigger constant `c`
//! (§7.4 of the paper). This crate implements those primitives — plus
//! SHA-256, a CTR stream mode, and an authenticated *sealed blob* format —
//! with no external dependencies, so that the rest of the workspace can rely
//! on real, standard algorithms:
//!
//! * [`sha1`] / [`sha256`] — FIPS 180-4 hash functions (test vectors
//!   included in the test suite).
//! * [`aes`] — FIPS 197 AES-128 block cipher and a CTR-mode keystream.
//! * [`kdf`] — the paper's `Hash(c|S)` 128-bit key derivation.
//! * [`blob`] — encrypt-then-MAC sealed blobs used to store encrypted bomb
//!   payloads inside app bytecode; opening with the wrong key fails
//!   (models "any attempts that try to decrypt the code with an incorrect
//!   key will fail").
//! * [`hex`] — hex encode/decode helpers used by the (dis)assembler.
//!
//! # Example
//!
//! ```
//! use bombdroid_crypto::{kdf, blob};
//!
//! // Derive the bomb key from the trigger constant and a per-bomb salt,
//! // exactly as the paper's `key = Hash(c | S)`.
//! let key = kdf::derive_key(b"0xfff000", b"bomb-salt-42");
//! let sealed = blob::seal(&key, b"repackaging detection payload");
//! assert_eq!(blob::open(&key, &sealed).unwrap(), b"repackaging detection payload");
//!
//! // A wrong key (attacker forcing the branch without knowing `c`) fails.
//! let wrong = kdf::derive_key(b"0xfff001", b"bomb-salt-42");
//! assert!(blob::open(&wrong, &sealed).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod blob;
pub mod hex;
pub mod kdf;
mod lanes;
pub mod sha1;
pub mod sha256;

pub use blob::{open, seal, OpenError};
pub use kdf::derive_key;
pub use sha1::Sha1;
pub use sha256::Sha256;

/// A 128-bit symmetric key, as used by the paper's AES-128 payload encryption.
pub type Key128 = [u8; 16];

/// A 160-bit SHA-1 digest — the hash values `Hc` stored in obfuscated
/// trigger conditions.
pub type Digest160 = [u8; 20];

/// A 256-bit SHA-256 digest, used for code/resource digests in MANIFEST.MF.
pub type Digest256 = [u8; 32];
