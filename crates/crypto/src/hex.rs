//! Hexadecimal encoding/decoding used by digests, the disassembler, and
//! steganographic resource strings.

use std::fmt;

/// Encodes `data` as lowercase hex.
///
/// ```
/// assert_eq!(bombdroid_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble in range"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble in range"));
    }
    out
}

/// Error returned by [`decode`] for malformed hex input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeHexError {
    kind: DecodeHexErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DecodeHexErrorKind {
    OddLength(usize),
    BadDigit(char),
    BadLength { expected: usize, actual: usize },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DecodeHexErrorKind::OddLength(n) => write!(f, "odd hex string length {n}"),
            DecodeHexErrorKind::BadDigit(c) => write!(f, "invalid hex digit {c:?}"),
            DecodeHexErrorKind::BadLength { expected, actual } => {
                write!(f, "expected {expected} bytes of hex, got {actual}")
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Decodes a lowercase/uppercase hex string.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the string has odd length or contains a
/// non-hex character.
///
/// ```
/// assert_eq!(bombdroid_crypto::hex::decode("dead").unwrap(), vec![0xde, 0xad]);
/// assert!(bombdroid_crypto::hex::decode("xyz").is_err());
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError {
            kind: DecodeHexErrorKind::OddLength(s.len()),
        });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        let hi = hi.to_digit(16).ok_or(DecodeHexError {
            kind: DecodeHexErrorKind::BadDigit(hi),
        })?;
        let lo = lo.to_digit(16).ok_or(DecodeHexError {
            kind: DecodeHexErrorKind::BadDigit(lo),
        })?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Decodes hex into a fixed-size array.
///
/// # Errors
///
/// Returns [`DecodeHexError`] on malformed hex or when the decoded length is
/// not exactly `N`.
///
/// ```
/// let key: [u8; 2] = bombdroid_crypto::hex::decode_array("beef").unwrap();
/// assert_eq!(key, [0xbe, 0xef]);
/// ```
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], DecodeHexError> {
    let bytes = decode(s)?;
    let actual = bytes.len();
    bytes.try_into().map_err(|_| DecodeHexError {
        kind: DecodeHexErrorKind::BadLength {
            expected: N,
            actual,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("a").is_err());
        assert!(decode("zz").is_err());
        assert!(decode_array::<4>("aabb").is_err());
        assert_eq!(decode_array::<2>("aabb").unwrap(), [0xaa, 0xbb]);
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }
}
