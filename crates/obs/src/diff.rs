//! Run-report diffing: compares two schema-v1 `metrics.json` artifacts.
//!
//! The paper's evaluation tables are comparisons — protected vs baseline,
//! run vs run. This module gives the reproduction the same move for its
//! own artifacts: parse two exports, walk every section, and report what
//! changed (deltas and percentages for counters and histogram volumes,
//! approximate p50/p95 drift for histograms and timings, added/removed
//! keys). The `metrics_diff` binary in `bombdroid-bench` renders the
//! report as a table and exits nonzero on a threshold breach; CI runs it
//! advisory between a committed reference and the fresh smoke artifact.
//!
//! Breaches are only raised for *deterministic* quantities — counter
//! values and histogram counts. Wall-clock numbers (timing `total_ns`,
//! percentile estimates) vary run to run and are reported for context,
//! never failed on.

use crate::hist::bucket_floor;
use crate::json::{parse, JsonValue};

/// What happened to one metric between the two artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffKind {
    /// Present only in the candidate.
    Added,
    /// Present only in the base.
    Removed,
    /// Present in both with a different value.
    Changed,
}

/// One row of the diff report.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Section the metric lives in (`counters`, `gauges`, …).
    pub section: &'static str,
    /// Metric name.
    pub name: String,
    /// Added / removed / changed.
    pub kind: DiffKind,
    /// Rendered base value (`-` when absent).
    pub base: String,
    /// Rendered candidate value (`-` when absent).
    pub cand: String,
    /// Relative change in percent, when both sides are numeric and the
    /// base is nonzero.
    pub pct: Option<f64>,
    /// Whether this row breaches the threshold (deterministic sections
    /// only).
    pub breach: bool,
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Threshold (percent) breaches were judged against.
    pub threshold_pct: f64,
    /// All rows with a difference, in section/name order.
    pub entries: Vec<DiffEntry>,
    /// Metrics compared (changed or not) — a sanity denominator.
    pub compared: usize,
}

impl DiffReport {
    /// Whether any row breached the threshold.
    pub fn has_breach(&self) -> bool {
        self.entries.iter().any(|e| e.breach)
    }

    /// Number of breaching rows.
    pub fn breaches(&self) -> usize {
        self.entries.iter().filter(|e| e.breach).count()
    }

    /// Renders the report as an aligned, human-readable table.
    pub fn table(&self) -> String {
        if self.entries.is_empty() {
            return format!("no differences across {} metrics\n", self.compared);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<42} {:>16} {:>16} {:>9}  {}\n",
            "section", "metric", "base", "candidate", "delta%", "flag"
        ));
        for e in &self.entries {
            let pct = match e.pct {
                Some(p) if p.is_finite() => format!("{p:+.1}%"),
                Some(_) => "new".to_string(),
                None => "-".to_string(),
            };
            let flag = match (&e.kind, e.breach) {
                (_, true) => "BREACH",
                (DiffKind::Added, _) => "added",
                (DiffKind::Removed, _) => "removed",
                (DiffKind::Changed, _) => "",
            };
            out.push_str(&format!(
                "{:<10} {:<42} {:>16} {:>16} {:>9}  {}\n",
                e.section, e.name, e.base, e.cand, pct, flag
            ));
        }
        out.push_str(&format!(
            "{} difference(s) across {} metrics, {} breach(es) at ±{}%\n",
            self.entries.len(),
            self.compared,
            self.breaches(),
            self.threshold_pct
        ));
        out
    }
}

fn pct_change(base: i128, cand: i128) -> Option<f64> {
    if base == cand {
        return None;
    }
    if base == 0 {
        return Some(f64::INFINITY);
    }
    Some((cand - base) as f64 / base.unsigned_abs() as f64 * 100.0)
}

/// Approximate nearest-rank percentile from exported `[index, count]`
/// bucket pairs (bucket floor, like the live recorder).
fn bucket_percentile(buckets: &[JsonValue], p: f64) -> Option<u64> {
    let pairs: Vec<(usize, u64)> = buckets
        .iter()
        .filter_map(|b| {
            let pair = b.as_array()?;
            Some((
                usize::try_from(pair.first()?.as_int()?).ok()?,
                u64::try_from(pair.get(1)?.as_int()?).ok()?,
            ))
        })
        .collect();
    let count: u64 = pairs.iter().map(|(_, n)| n).sum();
    if count == 0 {
        return None;
    }
    let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, n) in pairs {
        cum += n;
        if cum >= rank {
            return Some(bucket_floor(i));
        }
    }
    None
}

fn int_field(v: &JsonValue, key: &str) -> i128 {
    v.get(key).and_then(JsonValue::as_int).unwrap_or(0)
}

/// Parses and compares two `metrics.json` texts. `threshold_pct` bounds
/// the tolerated relative drift of counters and histogram counts; an
/// added or removed key in those sections also counts as a breach (the
/// vocabulary itself changed).
pub fn diff_metrics(base: &str, cand: &str, threshold_pct: f64) -> Result<DiffReport, String> {
    let base = parse(base).map_err(|e| format!("base: {e}"))?;
    let cand = parse(cand).map_err(|e| format!("candidate: {e}"))?;
    for (label, v) in [("base", &base), ("candidate", &cand)] {
        if v.as_object().is_none() {
            return Err(format!("{label}: top level is not an object"));
        }
    }

    let mut entries = Vec::new();
    let mut compared = 0usize;

    let empty = std::collections::BTreeMap::new();
    let section = |root: &JsonValue, name: &str| -> std::collections::BTreeMap<String, JsonValue> {
        root.get(name)
            .and_then(JsonValue::as_object)
            .unwrap_or(&empty)
            .clone()
    };

    // Scalar sections: counters breach, gauges are informational.
    for (sec, deterministic) in [("counters", true), ("gauges", false)] {
        let b = section(&base, sec);
        let c = section(&cand, sec);
        for name in b.keys().chain(c.keys().filter(|k| !b.contains_key(*k))) {
            match (b.get(name), c.get(name)) {
                (Some(bv), Some(cv)) => {
                    compared += 1;
                    let (bi, ci) = (bv.as_int().unwrap_or(0), cv.as_int().unwrap_or(0));
                    if let Some(p) = pct_change(bi, ci) {
                        entries.push(DiffEntry {
                            section: sec,
                            name: name.clone(),
                            kind: DiffKind::Changed,
                            base: bi.to_string(),
                            cand: ci.to_string(),
                            pct: Some(p),
                            breach: deterministic && p.abs() > threshold_pct,
                        });
                    }
                }
                (Some(bv), None) => {
                    compared += 1;
                    entries.push(DiffEntry {
                        section: sec,
                        name: name.clone(),
                        kind: DiffKind::Removed,
                        base: bv.as_int().map(|i| i.to_string()).unwrap_or_default(),
                        cand: "-".to_string(),
                        pct: None,
                        breach: deterministic,
                    });
                }
                (None, Some(cv)) => {
                    compared += 1;
                    entries.push(DiffEntry {
                        section: sec,
                        name: name.clone(),
                        kind: DiffKind::Added,
                        base: "-".to_string(),
                        cand: cv.as_int().map(|i| i.to_string()).unwrap_or_default(),
                        pct: None,
                        breach: deterministic,
                    });
                }
                (None, None) => {}
            }
        }
    }

    Ok(finish_diff(base, cand, threshold_pct, entries, compared))
}

fn finish_diff(
    base: JsonValue,
    cand: JsonValue,
    threshold_pct: f64,
    mut entries: Vec<DiffEntry>,
    mut compared: usize,
) -> DiffReport {
    let empty = std::collections::BTreeMap::new();
    let section = |root: &JsonValue, name: &str| -> std::collections::BTreeMap<String, JsonValue> {
        root.get(name)
            .and_then(JsonValue::as_object)
            .unwrap_or(&empty)
            .clone()
    };

    // Histograms: breach on count drift; report sum and percentile drift.
    let b = section(&base, "histograms");
    let c = section(&cand, "histograms");
    for name in b.keys().chain(c.keys().filter(|k| !b.contains_key(*k))) {
        compared += 1;
        match (b.get(name), c.get(name)) {
            (Some(bh), Some(ch)) => {
                let (bc, cc) = (int_field(bh, "count"), int_field(ch, "count"));
                let (bs, cs) = (int_field(bh, "sum"), int_field(ch, "sum"));
                if bc == cc && bs == cs {
                    continue;
                }
                let p50 = |h: &JsonValue| {
                    h.get("buckets")
                        .and_then(JsonValue::as_array)
                        .and_then(|bk| bucket_percentile(bk, 50.0))
                        .unwrap_or(0)
                };
                let pct = pct_change(bc, cc);
                entries.push(DiffEntry {
                    section: "histograms",
                    name: name.clone(),
                    kind: DiffKind::Changed,
                    base: format!("n={bc} Σ={bs} p50={}", p50(bh)),
                    cand: format!("n={cc} Σ={cs} p50={}", p50(ch)),
                    pct,
                    breach: pct.map(|p| p.abs() > threshold_pct).unwrap_or(false),
                });
            }
            (Some(bh), None) => entries.push(DiffEntry {
                section: "histograms",
                name: name.clone(),
                kind: DiffKind::Removed,
                base: format!("n={}", int_field(bh, "count")),
                cand: "-".to_string(),
                pct: None,
                breach: true,
            }),
            (None, Some(ch)) => entries.push(DiffEntry {
                section: "histograms",
                name: name.clone(),
                kind: DiffKind::Added,
                base: "-".to_string(),
                cand: format!("n={}", int_field(ch, "count")),
                pct: None,
                breach: true,
            }),
            (None, None) => {}
        }
    }

    // Timings: wall-clock, purely informational — report call-count and
    // percentile drift, never breach.
    let b = section(&base, "timings");
    let c = section(&cand, "timings");
    for name in b.keys().chain(c.keys().filter(|k| !b.contains_key(*k))) {
        compared += 1;
        match (b.get(name), c.get(name)) {
            (Some(bt), Some(ct)) => {
                let (bc, cc) = (int_field(bt, "calls"), int_field(ct, "calls"));
                let (bp, cp) = (int_field(bt, "p95_ns"), int_field(ct, "p95_ns"));
                if bc == cc && bp == cp {
                    continue;
                }
                entries.push(DiffEntry {
                    section: "timings",
                    name: name.clone(),
                    kind: DiffKind::Changed,
                    base: format!("calls={bc} p95={}", crate::fmt_ns(bp.max(0) as u64)),
                    cand: format!("calls={cc} p95={}", crate::fmt_ns(cp.max(0) as u64)),
                    pct: pct_change(bc, cc),
                    breach: false,
                });
            }
            (Some(_), None) => entries.push(DiffEntry {
                section: "timings",
                name: name.clone(),
                kind: DiffKind::Removed,
                base: "present".to_string(),
                cand: "-".to_string(),
                pct: None,
                breach: false,
            }),
            (None, Some(_)) => entries.push(DiffEntry {
                section: "timings",
                name: name.clone(),
                kind: DiffKind::Added,
                base: "-".to_string(),
                cand: "present".to_string(),
                pct: None,
                breach: false,
            }),
            (None, None) => {}
        }
    }

    entries.sort_by(|a, b| (a.section, &a.name).cmp(&(b.section, &b.name)));
    DiffReport {
        threshold_pct,
        entries,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn artifact(counter: u64, hist: &[u64], timing_ns: u64) -> String {
        let r = Recorder::new();
        r.counter_add("c.stable", 100);
        r.counter_add("c.moving", counter);
        r.gauge_set("g", 5);
        for &v in hist {
            r.record("h", v);
        }
        r.timing_record("t", timing_ns);
        r.to_json(true)
    }

    #[test]
    fn identical_artifacts_produce_no_differences() {
        let a = artifact(10, &[1, 2, 3], 1000);
        let report = diff_metrics(&a, &a, 5.0).unwrap();
        assert!(report.entries.is_empty(), "{}", report.table());
        assert!(!report.has_breach());
        assert!(report.compared >= 4);
        assert!(report.table().contains("no differences"));
    }

    #[test]
    fn counter_drift_breaches_threshold() {
        let base = artifact(100, &[1], 1000);
        let cand = artifact(120, &[1], 1000);
        let report = diff_metrics(&base, &cand, 10.0).unwrap();
        assert!(report.has_breach());
        let row = report
            .entries
            .iter()
            .find(|e| e.name == "c.moving")
            .expect("moving counter reported");
        assert_eq!(row.kind, DiffKind::Changed);
        assert!((row.pct.unwrap() - 20.0).abs() < 1e-9);
        assert!(report.table().contains("BREACH"));
        // Same drift under a looser threshold: reported but not a breach.
        let loose = diff_metrics(&base, &cand, 50.0).unwrap();
        assert!(!loose.has_breach());
        assert_eq!(
            loose
                .entries
                .iter()
                .filter(|e| e.name == "c.moving")
                .count(),
            1
        );
    }

    #[test]
    fn added_and_removed_counters_are_breaches() {
        let base = artifact(10, &[1], 1000);
        let cand = {
            let r = Recorder::new();
            r.counter_add("c.stable", 100);
            // c.moving gone, c.brand_new appears.
            r.counter_add("c.brand_new", 1);
            r.gauge_set("g", 5);
            r.record("h", 1);
            r.timing_record("t", 1000);
            r.to_json(true)
        };
        let report = diff_metrics(&base, &cand, 99.0).unwrap();
        let kinds: Vec<_> = report
            .entries
            .iter()
            .filter(|e| e.section == "counters")
            .map(|e| (e.name.clone(), e.kind.clone(), e.breach))
            .collect();
        assert!(kinds.contains(&("c.brand_new".to_string(), DiffKind::Added, true)));
        assert!(kinds.contains(&("c.moving".to_string(), DiffKind::Removed, true)));
    }

    #[test]
    fn histogram_count_drift_breaches_but_timing_drift_never_does() {
        let base = artifact(10, &[5, 5], 1_000);
        let cand = artifact(10, &[5, 5, 5, 5], 9_999_999);
        let report = diff_metrics(&base, &cand, 10.0).unwrap();
        let hist = report
            .entries
            .iter()
            .find(|e| e.section == "histograms")
            .expect("histogram reported");
        assert!(hist.breach, "count doubled → breach");
        let timing = report
            .entries
            .iter()
            .find(|e| e.section == "timings")
            .expect("timing drift reported");
        assert!(!timing.breach, "wall-clock drift must stay advisory");
    }

    #[test]
    fn gauges_report_without_breaching() {
        let base = artifact(10, &[1], 1000);
        let cand = base.replace("\"g\": 5", "\"g\": 50");
        let report = diff_metrics(&base, &cand, 1.0).unwrap();
        let g = report
            .entries
            .iter()
            .find(|e| e.section == "gauges")
            .expect("gauge change reported");
        assert!(!g.breach);
    }

    #[test]
    fn malformed_inputs_error_with_side_labels() {
        assert!(diff_metrics("not json", "{}", 5.0)
            .unwrap_err()
            .contains("base"));
        assert!(diff_metrics("{}", "not json", 5.0)
            .unwrap_err()
            .contains("candidate"));
        assert!(diff_metrics("[]", "{}", 5.0).unwrap_err().contains("base"));
    }

    #[test]
    fn bucket_percentile_matches_live_recorder() {
        let r = Recorder::new();
        for _ in 0..90 {
            r.record("h", 1_024);
        }
        for _ in 0..10 {
            r.record("h", 1_048_576);
        }
        let json = r.to_json(true);
        let parsed = parse(&json).unwrap();
        let buckets = parsed
            .get("histograms")
            .unwrap()
            .get("h")
            .unwrap()
            .get("buckets")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(bucket_percentile(buckets, 50.0), Some(1_024));
        assert_eq!(bucket_percentile(buckets, 95.0), Some(1_048_576));
    }
}
