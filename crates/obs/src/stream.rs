//! Windowed hierarchical aggregation for fleet-scale runs.
//!
//! The post-hoc model (hold one `Recorder` per task, merge all of them
//! when the run finishes) costs O(devices) memory — a non-starter for the
//! million-device market simulation in the roadmap. A [`ShardAggregator`]
//! instead accepts per-task recorder *deltas* one at a time, folds each
//! into the current window and the running total, and seals a
//! [`WindowSummary`] every `tasks_per_window` tasks. Live memory is the
//! open window plus the running total plus any un-drained summaries:
//! O(shards × windows), independent of how many tasks ever flowed through.
//!
//! # Determinism
//!
//! [`ShardAggregator::absorb_next`] must be called in task-index order —
//! the fleet engine's streaming fold guarantees this regardless of
//! `BOMBDROID_THREADS` (completed tasks park in a reorder buffer until
//! their index is next). Because counter sums, histogram buckets, and
//! timing call counts commute and the one order-sensitive operation
//! (gauge overwrite) happens in a fixed order, the running total is
//! bit-identical to a legacy whole-recorder merge of the same deltas —
//! for any worker count *and any window size*. The tests below and
//! `crates/bench/tests/streaming_obs.rs` pin this down.

use crate::json::{self, JsonValue};
use crate::recorder::Recorder;
use std::sync::{Arc, Mutex};

/// Version stamped into serialized [`AggregatorSnapshot`]s; bump on
/// breaking layout changes.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit over `bytes` — the window-digest hash. Stable across
/// platforms and cheap enough to run at every window seal.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A serializable view of a [`ShardAggregator`] at a window boundary: the
/// running total (deterministic export view) plus one digest per sealed
/// window. Checkpoint writers persist this instead of reaching into
/// recorder internals; [`ShardAggregator::restore`] rebuilds an aggregator
/// that continues absorbing exactly where the original stopped.
#[derive(Debug, Clone)]
pub struct AggregatorSnapshot {
    /// Window size of the aggregator that produced the snapshot.
    pub tasks_per_window: usize,
    /// Task deltas absorbed when the snapshot was taken.
    pub absorbed: usize,
    /// Windows sealed when the snapshot was taken.
    pub windows_sealed: usize,
    /// FNV-1a digest of each sealed window's identity and deterministic
    /// JSON, in seal order — resuming and re-running must extend, never
    /// rewrite, this sequence.
    pub window_digests: Vec<u64>,
    /// The running total at the snapshot point.
    pub total: Arc<Recorder>,
}

impl AggregatorSnapshot {
    /// Serializes the snapshot as schema-versioned JSON (deterministic:
    /// sorted keys throughout, no wall-clock fields).
    pub fn to_json(&self) -> String {
        let digests: Vec<String> = self.window_digests.iter().map(u64::to_string).collect();
        let total = self.total.to_json(false);
        format!(
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"kind\": \"aggregator_snapshot\",\n  \"tasks_per_window\": {},\n  \"absorbed\": {},\n  \"windows_sealed\": {},\n  \"window_digests\": [{}],\n  \"total\": {}}}\n",
            self.tasks_per_window,
            self.absorbed,
            self.windows_sealed,
            digests.join(", "),
            total.trim_end(),
        )
    }

    /// Rebuilds a snapshot from a parsed serialization.
    pub fn from_json(doc: &JsonValue) -> Result<AggregatorSnapshot, String> {
        let int = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(JsonValue::as_int)
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("aggregator snapshot: missing or bad {key:?}"))
        };
        let version = int("schema_version")?;
        if version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "aggregator snapshot: schema_version {version} (expected {SNAPSHOT_SCHEMA_VERSION})"
            ));
        }
        if doc.get("kind").and_then(JsonValue::as_str) != Some("aggregator_snapshot") {
            return Err("aggregator snapshot: bad kind".to_string());
        }
        let window_digests = doc
            .get("window_digests")
            .and_then(JsonValue::as_array)
            .ok_or("aggregator snapshot: missing window_digests")?
            .iter()
            .map(|v| {
                v.as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| "aggregator snapshot: bad digest".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let total = Recorder::from_deterministic_json(
            doc.get("total")
                .ok_or_else(|| "aggregator snapshot: missing total".to_string())?,
        )?;
        Ok(AggregatorSnapshot {
            tasks_per_window: int("tasks_per_window")? as usize,
            absorbed: int("absorbed")? as usize,
            windows_sealed: int("windows_sealed")? as usize,
            window_digests,
            total: Arc::new(total),
        })
    }

    /// Parses a snapshot from its JSON text.
    pub fn parse(text: &str) -> Result<AggregatorSnapshot, String> {
        AggregatorSnapshot::from_json(&json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One sealed aggregation window: the merged metrics of a contiguous,
/// in-order run of task deltas.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// Zero-based window sequence number.
    pub index: usize,
    /// Task index of the first delta folded into this window.
    pub start_task: usize,
    /// How many task deltas the window covers.
    pub tasks: usize,
    /// The merged metrics for the window.
    pub recorder: Arc<Recorder>,
}

#[derive(Debug)]
struct Inner {
    open: Arc<Recorder>,
    open_start: usize,
    open_tasks: usize,
    absorbed: usize,
    sealed: Vec<WindowSummary>,
    windows_sealed: usize,
    /// One FNV-1a digest per sealed window (never drained — O(windows),
    /// within the aggregator's stated memory bound).
    digests: Vec<u64>,
    total: Arc<Recorder>,
}

/// Streaming, windowed merge of per-task recorder deltas.
///
/// `tasks_per_window = 0` means "one window for the whole run" (sealed by
/// [`finish`](ShardAggregator::finish)); any other N seals a window every
/// N absorbed deltas.
#[derive(Debug)]
pub struct ShardAggregator {
    tasks_per_window: usize,
    inner: Mutex<Inner>,
}

impl ShardAggregator {
    /// A fresh aggregator sealing a window every `tasks_per_window` deltas
    /// (`0` = never, until [`finish`](ShardAggregator::finish)).
    pub fn new(tasks_per_window: usize) -> Self {
        ShardAggregator {
            tasks_per_window,
            inner: Mutex::new(Inner {
                open: Arc::new(Recorder::new()),
                open_start: 0,
                open_tasks: 0,
                absorbed: 0,
                sealed: Vec::new(),
                windows_sealed: 0,
                digests: Vec::new(),
                total: Arc::new(Recorder::new()),
            }),
        }
    }

    /// A serializable view of the aggregator, available only at a window
    /// boundary (no partially absorbed window — otherwise a restore could
    /// not resume without splitting a window). Returns `None` while a
    /// window is open; callers checkpoint right after a seal.
    pub fn snapshot(&self) -> Option<AggregatorSnapshot> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.open_tasks != 0 {
            return None;
        }
        let total = Arc::new(Recorder::new());
        total.merge_from(&inner.total);
        Some(AggregatorSnapshot {
            tasks_per_window: self.tasks_per_window,
            absorbed: inner.absorbed,
            windows_sealed: inner.windows_sealed,
            window_digests: inner.digests.clone(),
            total,
        })
    }

    /// Rebuilds an aggregator from a snapshot: same window size, running
    /// total restored, digest chain intact, ready to absorb the task delta
    /// the original would have absorbed next. Sealed-window summaries are
    /// not retained across the boundary (they are a streaming byproduct the
    /// original caller already drained).
    pub fn restore(snapshot: &AggregatorSnapshot) -> ShardAggregator {
        let total = Arc::new(Recorder::new());
        total.merge_from(&snapshot.total);
        ShardAggregator {
            tasks_per_window: snapshot.tasks_per_window,
            inner: Mutex::new(Inner {
                open: Arc::new(Recorder::new()),
                open_start: snapshot.absorbed,
                open_tasks: 0,
                absorbed: snapshot.absorbed,
                sealed: Vec::new(),
                windows_sealed: snapshot.windows_sealed,
                digests: snapshot.window_digests.clone(),
                total,
            }),
        }
    }

    /// FNV-1a digests of the sealed windows, in seal order.
    pub fn window_digests(&self) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .digests
            .clone()
    }

    /// Folds the next task's delta into the open window and the running
    /// total. Deltas must arrive in task-index order (see module docs).
    /// Returns the freshly sealed window when this delta completed one.
    pub fn absorb_next(&self, delta: &Recorder) -> Option<WindowSummary> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open.merge_from(delta);
        inner.total.merge_from(delta);
        inner.open_tasks += 1;
        inner.absorbed += 1;
        if self.tasks_per_window > 0 && inner.open_tasks >= self.tasks_per_window {
            Some(Self::seal(&mut inner))
        } else {
            None
        }
    }

    /// Seals the partial window still open, if it holds anything. Call
    /// once when the run ends so trailing tasks are not lost.
    pub fn finish(&self) -> Option<WindowSummary> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.open_tasks == 0 {
            return None;
        }
        Some(Self::seal(&mut inner))
    }

    fn seal(inner: &mut Inner) -> WindowSummary {
        let recorder = std::mem::replace(&mut inner.open, Arc::new(Recorder::new()));
        let summary = WindowSummary {
            index: inner.windows_sealed,
            start_task: inner.open_start,
            tasks: inner.open_tasks,
            recorder,
        };
        // Digest the window's identity plus its deterministic content, so
        // a resumed run that diverged in any window is caught by chain
        // comparison even after the window itself is drained.
        let digest = fnv64(
            format!(
                "{}:{}:{}:{}",
                summary.index,
                summary.start_task,
                summary.tasks,
                summary.recorder.to_json(false)
            )
            .as_bytes(),
        );
        inner.digests.push(digest);
        inner.windows_sealed += 1;
        inner.open_start = inner.absorbed;
        inner.open_tasks = 0;
        inner.sealed.push(summary.clone());
        summary
    }

    /// The running total across every absorbed delta (live handle — it
    /// keeps updating as more deltas arrive).
    pub fn total(&self) -> Arc<Recorder> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .total
            .clone()
    }

    /// Sealed windows retained so far (cleared by
    /// [`drain_windows`](ShardAggregator::drain_windows)).
    pub fn windows(&self) -> Vec<WindowSummary> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sealed
            .clone()
    }

    /// Takes the retained sealed windows, leaving none behind. Streaming
    /// consumers (the market simulation) drain after each seal so retained
    /// memory stays O(1) windows rather than O(run length).
    pub fn drain_windows(&self) -> Vec<WindowSummary> {
        std::mem::take(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()).sealed)
    }

    /// Total deltas absorbed.
    pub fn tasks_absorbed(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .absorbed
    }

    /// Windows sealed so far (drained or not).
    pub fn windows_sealed(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .windows_sealed
    }

    /// Distinct metric names held live (running total + open window). The
    /// memory-bound tests assert this stays flat as task count grows.
    pub fn live_metric_names(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.total.metric_names() + inner.open.metric_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(i: u64) -> Recorder {
        let r = Recorder::new();
        r.counter_add("sessions", 1);
        r.counter_add("events", 3 + i % 5);
        r.record("latency", 10 + i % 7);
        r.gauge_set("last_task", i as i64);
        r.timing_record("run", 100 + i);
        r
    }

    #[test]
    fn windows_seal_on_boundary_and_finish_flushes_the_tail() {
        let agg = ShardAggregator::new(4);
        let mut sealed = Vec::new();
        for i in 0..10 {
            if let Some(w) = agg.absorb_next(&delta(i)) {
                sealed.push(w);
            }
        }
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed[0].index, 0);
        assert_eq!(sealed[0].start_task, 0);
        assert_eq!(sealed[0].tasks, 4);
        assert_eq!(sealed[1].start_task, 4);
        let tail = agg.finish().expect("partial window");
        assert_eq!(tail.index, 2);
        assert_eq!(tail.start_task, 8);
        assert_eq!(tail.tasks, 2);
        assert!(agg.finish().is_none(), "finish is idempotent when empty");
        assert_eq!(agg.tasks_absorbed(), 10);
        assert_eq!(agg.windows_sealed(), 3);
        assert_eq!(agg.windows().len(), 3);
        // Window counters partition the total.
        let windowed: u64 = agg
            .windows()
            .iter()
            .map(|w| w.recorder.counter_value("sessions"))
            .sum();
        assert_eq!(windowed, 10);
        assert_eq!(agg.total().counter_value("sessions"), 10);
    }

    #[test]
    fn total_is_bit_identical_across_window_sizes_and_to_legacy_merge() {
        let legacy = Recorder::new();
        for i in 0..57 {
            legacy.merge_from(&delta(i));
        }
        let expect = legacy.to_json(false);
        for window in [0, 1, 7, 16, 57, 1000] {
            let agg = ShardAggregator::new(window);
            for i in 0..57 {
                agg.absorb_next(&delta(i));
            }
            agg.finish();
            assert_eq!(
                agg.total().to_json(false),
                expect,
                "window size {window} diverged from legacy merge"
            );
        }
    }

    #[test]
    fn zero_window_size_seals_only_on_finish() {
        let agg = ShardAggregator::new(0);
        for i in 0..5 {
            assert!(agg.absorb_next(&delta(i)).is_none());
        }
        let w = agg.finish().expect("one big window");
        assert_eq!(w.tasks, 5);
        assert_eq!(agg.windows_sealed(), 1);
    }

    #[test]
    fn drain_windows_bounds_retention() {
        let agg = ShardAggregator::new(2);
        for i in 0..8 {
            if agg.absorb_next(&delta(i)).is_some() {
                let drained = agg.drain_windows();
                assert_eq!(drained.len(), 1);
            }
        }
        assert!(agg.windows().is_empty());
        assert_eq!(agg.windows_sealed(), 4);
        assert_eq!(agg.total().counter_value("sessions"), 8);
    }

    #[test]
    fn snapshot_round_trips_and_resumes_bit_identically() {
        let agg = ShardAggregator::new(4);
        for i in 0..8 {
            agg.absorb_next(&delta(i));
        }
        agg.drain_windows(); // sealed summaries are not part of the snapshot
        let snap = agg.snapshot().expect("at a window boundary");
        let text = snap.to_json();
        let parsed = AggregatorSnapshot::parse(&text).expect("snapshot JSON parses");
        assert_eq!(parsed.absorbed, 8);
        assert_eq!(parsed.windows_sealed, 2);
        assert_eq!(parsed.window_digests, snap.window_digests);
        let resumed = ShardAggregator::restore(&parsed);
        // Feed both the original and the restored aggregator the same tail.
        for i in 8..13 {
            agg.absorb_next(&delta(i));
            resumed.absorb_next(&delta(i));
        }
        agg.finish();
        resumed.finish();
        assert_eq!(agg.total().to_json(false), resumed.total().to_json(false));
        assert_eq!(agg.window_digests(), resumed.window_digests());
        assert_eq!(agg.tasks_absorbed(), resumed.tasks_absorbed());
        assert_eq!(agg.windows_sealed(), resumed.windows_sealed());
    }

    #[test]
    fn snapshot_is_unavailable_mid_window() {
        let agg = ShardAggregator::new(4);
        assert!(agg.snapshot().is_some(), "empty aggregator is a boundary");
        agg.absorb_next(&delta(0));
        assert!(agg.snapshot().is_none(), "open window blocks snapshots");
        for i in 1..4 {
            agg.absorb_next(&delta(i));
        }
        assert!(agg.snapshot().is_some(), "boundary again after the seal");
        // total()/windows() semantics are unaffected by snapshotting.
        assert_eq!(agg.total().counter_value("sessions"), 4);
        assert_eq!(agg.windows().len(), 1);
    }

    #[test]
    fn snapshot_parse_rejects_broken_documents() {
        assert!(AggregatorSnapshot::parse("{}").is_err());
        assert!(AggregatorSnapshot::parse("not json").is_err());
        let agg = ShardAggregator::new(2);
        agg.absorb_next(&delta(0));
        agg.absorb_next(&delta(1));
        let good = agg.snapshot().expect("boundary").to_json();
        let bad = good.replace("\"kind\": \"aggregator_snapshot\"", "\"kind\": \"other\"");
        assert!(AggregatorSnapshot::parse(&bad).is_err());
    }

    #[test]
    fn live_metric_names_stay_bounded() {
        let agg = ShardAggregator::new(16);
        for i in 0..1_000 {
            agg.absorb_next(&delta(i));
            agg.drain_windows();
        }
        // 5 distinct names in total + at most 5 in the open window.
        assert!(agg.live_metric_names() <= 10);
    }
}
