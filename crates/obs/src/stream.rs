//! Windowed hierarchical aggregation for fleet-scale runs.
//!
//! The post-hoc model (hold one `Recorder` per task, merge all of them
//! when the run finishes) costs O(devices) memory — a non-starter for the
//! million-device market simulation in the roadmap. A [`ShardAggregator`]
//! instead accepts per-task recorder *deltas* one at a time, folds each
//! into the current window and the running total, and seals a
//! [`WindowSummary`] every `tasks_per_window` tasks. Live memory is the
//! open window plus the running total plus any un-drained summaries:
//! O(shards × windows), independent of how many tasks ever flowed through.
//!
//! # Determinism
//!
//! [`ShardAggregator::absorb_next`] must be called in task-index order —
//! the fleet engine's streaming fold guarantees this regardless of
//! `BOMBDROID_THREADS` (completed tasks park in a reorder buffer until
//! their index is next). Because counter sums, histogram buckets, and
//! timing call counts commute and the one order-sensitive operation
//! (gauge overwrite) happens in a fixed order, the running total is
//! bit-identical to a legacy whole-recorder merge of the same deltas —
//! for any worker count *and any window size*. The tests below and
//! `crates/bench/tests/streaming_obs.rs` pin this down.

use crate::recorder::Recorder;
use std::sync::{Arc, Mutex};

/// One sealed aggregation window: the merged metrics of a contiguous,
/// in-order run of task deltas.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// Zero-based window sequence number.
    pub index: usize,
    /// Task index of the first delta folded into this window.
    pub start_task: usize,
    /// How many task deltas the window covers.
    pub tasks: usize,
    /// The merged metrics for the window.
    pub recorder: Arc<Recorder>,
}

#[derive(Debug)]
struct Inner {
    open: Arc<Recorder>,
    open_start: usize,
    open_tasks: usize,
    absorbed: usize,
    sealed: Vec<WindowSummary>,
    windows_sealed: usize,
    total: Arc<Recorder>,
}

/// Streaming, windowed merge of per-task recorder deltas.
///
/// `tasks_per_window = 0` means "one window for the whole run" (sealed by
/// [`finish`](ShardAggregator::finish)); any other N seals a window every
/// N absorbed deltas.
#[derive(Debug)]
pub struct ShardAggregator {
    tasks_per_window: usize,
    inner: Mutex<Inner>,
}

impl ShardAggregator {
    /// A fresh aggregator sealing a window every `tasks_per_window` deltas
    /// (`0` = never, until [`finish`](ShardAggregator::finish)).
    pub fn new(tasks_per_window: usize) -> Self {
        ShardAggregator {
            tasks_per_window,
            inner: Mutex::new(Inner {
                open: Arc::new(Recorder::new()),
                open_start: 0,
                open_tasks: 0,
                absorbed: 0,
                sealed: Vec::new(),
                windows_sealed: 0,
                total: Arc::new(Recorder::new()),
            }),
        }
    }

    /// Folds the next task's delta into the open window and the running
    /// total. Deltas must arrive in task-index order (see module docs).
    /// Returns the freshly sealed window when this delta completed one.
    pub fn absorb_next(&self, delta: &Recorder) -> Option<WindowSummary> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open.merge_from(delta);
        inner.total.merge_from(delta);
        inner.open_tasks += 1;
        inner.absorbed += 1;
        if self.tasks_per_window > 0 && inner.open_tasks >= self.tasks_per_window {
            Some(Self::seal(&mut inner))
        } else {
            None
        }
    }

    /// Seals the partial window still open, if it holds anything. Call
    /// once when the run ends so trailing tasks are not lost.
    pub fn finish(&self) -> Option<WindowSummary> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.open_tasks == 0 {
            return None;
        }
        Some(Self::seal(&mut inner))
    }

    fn seal(inner: &mut Inner) -> WindowSummary {
        let recorder = std::mem::replace(&mut inner.open, Arc::new(Recorder::new()));
        let summary = WindowSummary {
            index: inner.windows_sealed,
            start_task: inner.open_start,
            tasks: inner.open_tasks,
            recorder,
        };
        inner.windows_sealed += 1;
        inner.open_start = inner.absorbed;
        inner.open_tasks = 0;
        inner.sealed.push(summary.clone());
        summary
    }

    /// The running total across every absorbed delta (live handle — it
    /// keeps updating as more deltas arrive).
    pub fn total(&self) -> Arc<Recorder> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .total
            .clone()
    }

    /// Sealed windows retained so far (cleared by
    /// [`drain_windows`](ShardAggregator::drain_windows)).
    pub fn windows(&self) -> Vec<WindowSummary> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sealed
            .clone()
    }

    /// Takes the retained sealed windows, leaving none behind. Streaming
    /// consumers (the market simulation) drain after each seal so retained
    /// memory stays O(1) windows rather than O(run length).
    pub fn drain_windows(&self) -> Vec<WindowSummary> {
        std::mem::take(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()).sealed)
    }

    /// Total deltas absorbed.
    pub fn tasks_absorbed(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .absorbed
    }

    /// Windows sealed so far (drained or not).
    pub fn windows_sealed(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .windows_sealed
    }

    /// Distinct metric names held live (running total + open window). The
    /// memory-bound tests assert this stays flat as task count grows.
    pub fn live_metric_names(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.total.metric_names() + inner.open.metric_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(i: u64) -> Recorder {
        let r = Recorder::new();
        r.counter_add("sessions", 1);
        r.counter_add("events", 3 + i % 5);
        r.record("latency", 10 + i % 7);
        r.gauge_set("last_task", i as i64);
        r.timing_record("run", 100 + i);
        r
    }

    #[test]
    fn windows_seal_on_boundary_and_finish_flushes_the_tail() {
        let agg = ShardAggregator::new(4);
        let mut sealed = Vec::new();
        for i in 0..10 {
            if let Some(w) = agg.absorb_next(&delta(i)) {
                sealed.push(w);
            }
        }
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed[0].index, 0);
        assert_eq!(sealed[0].start_task, 0);
        assert_eq!(sealed[0].tasks, 4);
        assert_eq!(sealed[1].start_task, 4);
        let tail = agg.finish().expect("partial window");
        assert_eq!(tail.index, 2);
        assert_eq!(tail.start_task, 8);
        assert_eq!(tail.tasks, 2);
        assert!(agg.finish().is_none(), "finish is idempotent when empty");
        assert_eq!(agg.tasks_absorbed(), 10);
        assert_eq!(agg.windows_sealed(), 3);
        assert_eq!(agg.windows().len(), 3);
        // Window counters partition the total.
        let windowed: u64 = agg
            .windows()
            .iter()
            .map(|w| w.recorder.counter_value("sessions"))
            .sum();
        assert_eq!(windowed, 10);
        assert_eq!(agg.total().counter_value("sessions"), 10);
    }

    #[test]
    fn total_is_bit_identical_across_window_sizes_and_to_legacy_merge() {
        let legacy = Recorder::new();
        for i in 0..57 {
            legacy.merge_from(&delta(i));
        }
        let expect = legacy.to_json(false);
        for window in [0, 1, 7, 16, 57, 1000] {
            let agg = ShardAggregator::new(window);
            for i in 0..57 {
                agg.absorb_next(&delta(i));
            }
            agg.finish();
            assert_eq!(
                agg.total().to_json(false),
                expect,
                "window size {window} diverged from legacy merge"
            );
        }
    }

    #[test]
    fn zero_window_size_seals_only_on_finish() {
        let agg = ShardAggregator::new(0);
        for i in 0..5 {
            assert!(agg.absorb_next(&delta(i)).is_none());
        }
        let w = agg.finish().expect("one big window");
        assert_eq!(w.tasks, 5);
        assert_eq!(agg.windows_sealed(), 1);
    }

    #[test]
    fn drain_windows_bounds_retention() {
        let agg = ShardAggregator::new(2);
        for i in 0..8 {
            if agg.absorb_next(&delta(i)).is_some() {
                let drained = agg.drain_windows();
                assert_eq!(drained.len(), 1);
            }
        }
        assert!(agg.windows().is_empty());
        assert_eq!(agg.windows_sealed(), 4);
        assert_eq!(agg.total().counter_value("sessions"), 8);
    }

    #[test]
    fn live_metric_names_stay_bounded() {
        let agg = ShardAggregator::new(16);
        for i in 0..1_000 {
            agg.absorb_next(&delta(i));
            agg.drain_windows();
        }
        // 5 distinct names in total + at most 5 in the open window.
        assert!(agg.live_metric_names() <= 10);
    }
}
