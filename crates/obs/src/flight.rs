//! Bounded flight recorder: a fixed-capacity ring of recent structured
//! events, dumped on panic so a failed multi-minute run leaves a
//! diagnosable trace instead of nothing.
//!
//! Counters tell you *how much*; the flight recorder tells you *what just
//! happened*. Hot paths call [`note`] with a static event kind and a lazy
//! detail closure (never evaluated when obs is off), the ring keeps the
//! last `capacity` events and counts what it dropped, and
//! [`install_panic_hook`] chains a hook that writes
//! `target/repro_output/flight.json` (schema below) before the process
//! dies. `repro` also writes the file on normal exit so CI can validate
//! the schema on every run.
//!
//! Flight events are diagnostics, not metrics: they carry wall-clock
//! timestamps and may be scheduling-dependent (e.g. fleet reorder-buffer
//! depth), so they never feed the deterministic recorder sections.
//!
//! # `flight.json` schema (v1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "capacity": 256,
//!   "dropped": 0,
//!   "events": [ {"seq": 0, "at_ns": 12345, "kind": "...", "detail": "..."} ]
//! }
//! ```

use crate::recorder::escape_json;
use std::collections::VecDeque;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Version stamped into `flight.json`.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// Default ring capacity; override with [`set_capacity`].
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused, survives drops).
    pub seq: u64,
    /// Nanoseconds since the first flight-recorder touch in this process.
    pub at_ns: u64,
    /// Static event kind, e.g. `"vm.fault.decrypt"`.
    pub kind: &'static str,
    /// Free-form detail rendered by the caller's closure.
    pub detail: String,
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dropped: 0,
            events: VecDeque::with_capacity(DEFAULT_CAPACITY),
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Records an event. `detail` is only rendered when obs is enabled, so an
/// `off` run pays one atomic load and nothing else.
pub fn note(kind: &'static str, detail: impl FnOnce() -> String) {
    if !crate::enabled() {
        return;
    }
    let at_ns = epoch().elapsed().as_nanos() as u64;
    let detail = detail();
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.events.len() >= ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(FlightEvent {
        seq,
        at_ns,
        kind,
        detail,
    });
}

/// Resizes the ring, evicting oldest events if shrinking. Capacity `0` is
/// clamped to 1 (a ring that can hold nothing is useless for diagnosis).
pub fn set_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    while ring.events.len() > capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.capacity = capacity;
}

/// Empties the ring and resets the drop counter (sequence numbers keep
/// climbing). For tests.
pub fn clear() {
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.events.clear();
    ring.dropped = 0;
}

/// Events currently held, oldest first.
pub fn snapshot() -> Vec<FlightEvent> {
    ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .events
        .iter()
        .cloned()
        .collect()
}

/// How many events were evicted to make room.
pub fn dropped() -> u64 {
    ring().lock().unwrap_or_else(|e| e.into_inner()).dropped
}

/// Current ring capacity.
pub fn capacity() -> usize {
    ring().lock().unwrap_or_else(|e| e.into_inner()).capacity
}

/// Serializes the ring as schema-versioned JSON.
pub fn to_json() -> String {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::with_capacity(256 + ring.events.len() * 96);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {FLIGHT_SCHEMA_VERSION},\n  \"capacity\": {},\n  \"dropped\": {},\n  \"events\": [",
        ring.capacity, ring.dropped
    ));
    for (i, ev) in ring.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"at_ns\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            ev.seq,
            ev.at_ns,
            escape_json(ev.kind),
            escape_json(&ev.detail)
        ));
    }
    if !ring.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the ring to `path`, creating parent directories.
pub fn dump(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json())
}

/// The conventional dump location, shared by the panic hook and `repro`.
pub fn default_dump_path() -> std::path::PathBuf {
    std::path::PathBuf::from("target/repro_output/flight.json")
}

/// Installs a panic hook (once per process) that dumps the ring to
/// [`default_dump_path`] and then runs the previously installed hook, so
/// the usual backtrace still prints.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            note("panic", || info.to_string());
            let path = default_dump_path();
            if dump(&path).is_ok() {
                eprintln!("[obs] flight recorder dumped to {}", path.display());
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so exercise everything in one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn ring_bounds_capacity_and_serializes() {
        if !crate::enabled() {
            return; // BOMBDROID_OBS=off turns note() into a no-op.
        }
        clear();
        set_capacity(4);
        for i in 0..10 {
            note("test.event", || format!("payload {i}"));
        }
        let events = snapshot();
        assert_eq!(events.len(), 4, "ring must hold exactly `capacity` events");
        assert_eq!(dropped(), 6);
        // Oldest evicted first: the survivors are the 4 most recent.
        assert!(events[0].seq < events[3].seq);
        assert_eq!(events[3].detail, "payload 9");
        // Timestamps are monotone within the ring.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));

        let json = to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"dropped\": 6"));
        assert!(json.contains("payload 9"));
        crate::schema::validate_flight(&json).expect("self-produced flight.json must validate");

        // Detail strings with JSON-hostile characters survive a round trip.
        clear();
        note("test.escape", || {
            "quote \" backslash \\ newline \n".to_string()
        });
        crate::schema::validate_flight(&to_json()).expect("escaped payload must validate");
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }
}
