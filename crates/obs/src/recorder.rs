//! The metrics registry: named counters, gauges, histograms, and timings.
//!
//! A [`Recorder`] is the unit of aggregation. The process has one global
//! recorder; the fleet engine gives every task its own and folds them into
//! the caller's recorder (or a [`crate::stream::ShardAggregator`]) in
//! task-index order, which keeps the merged content bit-identical for any
//! worker count (see the determinism contract in the crate docs).
//!
//! Name lookups take a read lock on a `BTreeMap` and operate on the handle
//! in place — the hot facade path (`counter_add`/`record`/`timing_record`
//! on an existing name) performs no allocation and no `Arc` clone; the
//! name's `String` key is allocated once, on first insertion, under the
//! write lock. Everything is keyed and exported in sorted name order so
//! two recorders with the same content serialize identically.

use crate::hist::{bucket_floor, bucket_index, Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Version stamped into every `metrics.json`; bump on breaking schema
/// changes so downstream diffs fail loudly instead of silently.
pub const SCHEMA_VERSION: u64 = 1;

/// Wall-clock statistics for one span or timing: how often it ran, for how
/// long in total, and a log-bucketed latency distribution. `calls` is
/// deterministic (it counts events); the nanosecond fields are wall-clock
/// and therefore excluded from the deterministic export view.
#[derive(Debug)]
pub struct TimingStat {
    calls: AtomicU64,
    ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for TimingStat {
    fn default() -> Self {
        TimingStat {
            calls: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl TimingStat {
    /// Records one timed interval.
    pub fn record(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded intervals.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds across all intervals.
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Approximate nearest-rank percentile of the per-call latency, reported
    /// as the floor of the log bucket the rank lands in (`0` when empty).
    /// `p` is in percent (e.g. `50.0`, `95.0`).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.calls();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Adds `n` calls with no wall-clock samples — the snapshot-restore
    /// path. The deterministic export view carries only the call count, so
    /// this is all a restore can (and needs to) reproduce.
    fn add_calls(&self, n: u64) {
        self.calls.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds every interval of `other` into `self` (commutative).
    pub fn merge_from(&self, other: &TimingStat) {
        self.calls.fetch_add(other.calls(), Ordering::Relaxed);
        self.ns.fetch_add(other.total_ns(), Ordering::Relaxed);
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

type Named<T> = RwLock<BTreeMap<String, Arc<T>>>;

/// Runs `f` on the named handle. The fast path (name already present) takes
/// only the read lock and never allocates; the slow path allocates the
/// `String` key once under the write lock.
fn with_handle<T: Default, R>(map: &Named<T>, name: &str, f: impl FnOnce(&T) -> R) -> R {
    {
        let read = map.read().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = read.get(name) {
            return f(h);
        }
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    let h = write
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(T::default()));
    f(h)
}

fn handle<T: Default>(map: &Named<T>, name: &str) -> Arc<T> {
    {
        let read = map.read().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = read.get(name) {
            return h.clone();
        }
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    write
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(T::default()))
        .clone()
}

fn sorted<T>(map: &Named<T>) -> Vec<(String, Arc<T>)> {
    map.read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// A set of named metrics. Cheap to create, safe to share across threads,
/// mergeable into another recorder.
#[derive(Debug, Default)]
pub struct Recorder {
    counters: Named<AtomicU64>,
    gauges: Named<AtomicI64>,
    histograms: Named<Histogram>,
    timings: Named<TimingStat>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        with_handle(&self.counters, name, |c| {
            c.fetch_add(delta, Ordering::Relaxed);
        });
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: i64) {
        with_handle(&self.gauges, name, |g| {
            g.store(value, Ordering::Relaxed);
        });
    }

    /// Records `value` into the named log-bucketed histogram.
    pub fn record(&self, name: &str, value: u64) {
        with_handle(&self.histograms, name, |h| h.record(value));
    }

    /// Records one timed interval of `ns` nanoseconds under `name`.
    pub fn timing_record(&self, name: &str, ns: u64) {
        with_handle(&self.timings, name, |t| t.record(ns));
    }

    /// Current value of a counter (`0` if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        with_handle(&self.counters, name, |c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge (`0` if never set).
    pub fn gauge_value(&self, name: &str) -> i64 {
        with_handle(&self.gauges, name, |g| g.load(Ordering::Relaxed))
    }

    /// Call count of a timing (`0` if never recorded).
    pub fn timing_calls(&self, name: &str) -> u64 {
        with_handle(&self.timings, name, |t| t.calls())
    }

    /// Total wall-clock nanoseconds of a timing.
    pub fn timing_total_ns(&self, name: &str) -> u64 {
        with_handle(&self.timings, name, |t| t.total_ns())
    }

    /// Approximate per-call latency percentile of a timing (bucket floor).
    pub fn timing_percentile_ns(&self, name: &str, p: f64) -> u64 {
        with_handle(&self.timings, name, |t| t.percentile_ns(p))
    }

    /// The named histogram handle (created empty if absent).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        handle(&self.histograms, name)
    }

    /// Number of distinct metric names across every section. The streaming
    /// aggregation tests use this as the memory-footprint proxy: a bounded
    /// workload vocabulary must keep this bounded no matter how many
    /// sessions fold in.
    pub fn metric_names(&self) -> usize {
        fn len<T>(m: &Named<T>) -> usize {
            m.read().unwrap_or_else(|e| e.into_inner()).len()
        }
        len(&self.counters) + len(&self.gauges) + len(&self.histograms) + len(&self.timings)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metric_names() == 0
    }

    /// Folds every metric of `other` into `self`: counters and timings add,
    /// histograms merge bucket-wise, gauges overwrite (`other` wins). All
    /// operations except the gauge overwrite commute; callers that need
    /// determinism (the fleet engine) merge in task-index order.
    pub fn merge_from(&self, other: &Recorder) {
        for (name, c) in sorted(&other.counters) {
            self.counter_add(&name, c.load(Ordering::Relaxed));
        }
        for (name, g) in sorted(&other.gauges) {
            self.gauge_set(&name, g.load(Ordering::Relaxed));
        }
        for (name, h) in sorted(&other.histograms) {
            with_handle(&self.histograms, &name, |mine| mine.merge_from(&h));
        }
        for (name, t) in sorted(&other.timings) {
            with_handle(&self.timings, &name, |mine| mine.merge_from(&t));
        }
    }

    /// Rebuilds a recorder from a parsed deterministic export
    /// (`to_json(false)`). The round trip is exact: re-exporting the
    /// restored recorder with `to_json(false)` reproduces the original
    /// bytes. Wall-clock timing fields were never exported, so only the
    /// timing call counts come back — which is precisely the deterministic
    /// view. This is the checkpoint-restore path; see
    /// [`crate::stream::AggregatorSnapshot`].
    pub fn from_deterministic_json(doc: &crate::json::JsonValue) -> Result<Recorder, String> {
        use crate::json::JsonValue;
        let int = |v: &JsonValue, ctx: &str| -> Result<u64, String> {
            v.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("recorder restore: {ctx} is not a u64"))
        };
        let section = |name: &str| -> Result<Vec<(String, JsonValue)>, String> {
            doc.get(name)
                .and_then(JsonValue::as_object)
                .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                .ok_or_else(|| format!("recorder restore: missing {name:?} object"))
        };
        let version = int(
            doc.get("schema_version").unwrap_or(&JsonValue::Null),
            "schema_version",
        )?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "recorder restore: schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let rec = Recorder::new();
        for (name, v) in section("counters")? {
            rec.counter_add(&name, int(&v, &name)?);
        }
        for (name, v) in section("gauges")? {
            let g = v
                .as_int()
                .and_then(|i| i64::try_from(i).ok())
                .ok_or_else(|| format!("recorder restore: gauge {name:?} is not an i64"))?;
            rec.gauge_set(&name, g);
        }
        for (name, v) in section("histograms")? {
            let field = |k: &str| int(v.get(k).unwrap_or(&JsonValue::Null), k);
            let buckets = v
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("recorder restore: histogram {name:?} has no buckets"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("recorder restore: bad bucket in {name:?}"))?;
                    Ok((
                        int(&pair[0], "bucket index")? as usize,
                        int(&pair[1], "bucket count")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            rec.histogram(&name).absorb_raw(
                field("count")?,
                field("sum")?,
                field("min")?,
                field("max")?,
                &buckets,
            );
        }
        for (name, v) in section("timings")? {
            let calls = int(
                v.get("calls").unwrap_or(&crate::json::JsonValue::Null),
                "calls",
            )?;
            with_handle(&rec.timings, &name, |t| t.add_calls(calls));
        }
        Ok(rec)
    }

    /// Serializes the recorder as schema-versioned JSON (sorted keys, so
    /// equal content means equal bytes).
    ///
    /// With `include_timings` false, wall-clock fields (`total_ns`,
    /// `p50_ns`, `p95_ns`) are omitted and the output is fully
    /// deterministic for deterministic workloads — this is the view
    /// `fleet_determinism` diffs across thread counts, and the view the
    /// streaming-aggregation tests compare across window sizes.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));

        out.push_str("  \"counters\": {");
        let counters = sorted(&self.counters);
        push_entries(&mut out, counters.len(), |out, i| {
            let (name, c) = &counters[i];
            out.push_str(&format!(
                "\"{}\": {}",
                escape_json(name),
                c.load(Ordering::Relaxed)
            ));
        });
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        let gauges = sorted(&self.gauges);
        push_entries(&mut out, gauges.len(), |out, i| {
            let (name, g) = &gauges[i];
            out.push_str(&format!(
                "\"{}\": {}",
                escape_json(name),
                g.load(Ordering::Relaxed)
            ));
        });
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let hists = sorted(&self.histograms);
        push_entries(&mut out, hists.len(), |out, i| {
            let (name, h) = &hists[i];
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(b, n)| format!("[{b}, {n}]"))
                .collect();
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                buckets.join(", ")
            ));
        });
        out.push_str("},\n");

        out.push_str("  \"timings\": {");
        let timings = sorted(&self.timings);
        push_entries(&mut out, timings.len(), |out, i| {
            let (name, t) = &timings[i];
            if include_timings {
                out.push_str(&format!(
                    "\"{}\": {{\"calls\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}",
                    escape_json(name),
                    t.calls(),
                    t.total_ns(),
                    t.percentile_ns(50.0),
                    t.percentile_ns(95.0)
                ));
            } else {
                out.push_str(&format!(
                    "\"{}\": {{\"calls\": {}}}",
                    escape_json(name),
                    t.calls()
                ));
            }
        });
        out.push_str("}\n}\n");
        out
    }

    /// Renders a human-readable summary table (the block `repro` appends to
    /// its output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let counters = sorted(&self.counters);
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &counters {
                out.push_str(&format!("  {name:<36} {}\n", c.load(Ordering::Relaxed)));
            }
        }
        let gauges = sorted(&self.gauges);
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in &gauges {
                out.push_str(&format!("  {name:<36} {}\n", g.load(Ordering::Relaxed)));
            }
        }
        let hists = sorted(&self.histograms);
        if !hists.is_empty() {
            out.push_str("histograms (count / min / mean / max):\n");
            for (name, h) in &hists {
                out.push_str(&format!(
                    "  {name:<36} {} / {} / {:.1} / {}\n",
                    h.count(),
                    h.min(),
                    h.mean(),
                    h.max()
                ));
            }
        }
        let timings = sorted(&self.timings);
        if !timings.is_empty() {
            out.push_str("timings (calls / total / mean / ~p95):\n");
            for (name, t) in &timings {
                let calls = t.calls();
                let total = t.total_ns();
                let mean = total.checked_div(calls).unwrap_or(0);
                out.push_str(&format!(
                    "  {name:<36} {calls} / {} / {} / {}\n",
                    fmt_ns(total),
                    fmt_ns(mean),
                    fmt_ns(t.percentile_ns(95.0))
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

fn push_entries(out: &mut String, n: usize, mut write: impl FnMut(&mut String, usize)) {
    for i in 0..n {
        if i == 0 {
            out.push_str("\n    ");
        } else {
            out.push_str(",\n    ");
        }
        write(out, i);
    }
    if n > 0 {
        out.push_str("\n  ");
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Formats nanoseconds with a human unit (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}µs", ns / 1_000),
        10_000_000..=999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = Recorder::new();
        r.counter_add("a.b", 3);
        r.counter_add("a.b", 4);
        r.gauge_set("g", -2);
        r.gauge_set("g", 9);
        assert_eq!(r.counter_value("a.b"), 7);
        assert_eq!(r.gauge_value("g"), 9);
        assert_eq!(r.metric_names(), 2);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_and_merges_histograms() {
        let parent = Recorder::new();
        parent.counter_add("c", 1);
        parent.gauge_set("g", 5);
        parent.record("h", 10);
        parent.timing_record("t", 100);

        let child = Recorder::new();
        child.counter_add("c", 2);
        child.counter_add("only_child", 1);
        child.gauge_set("g", 7);
        child.record("h", 20);
        child.timing_record("t", 50);

        parent.merge_from(&child);
        assert_eq!(parent.counter_value("c"), 3);
        assert_eq!(parent.counter_value("only_child"), 1);
        assert_eq!(parent.gauge_value("g"), 7);
        assert_eq!(parent.histogram("h").count(), 2);
        assert_eq!(parent.histogram("h").sum(), 30);
        assert_eq!(parent.timing_calls("t"), 2);
        assert_eq!(parent.timing_total_ns("t"), 150);
    }

    #[test]
    fn merge_order_does_not_change_sums() {
        let make = |vals: &[u64]| {
            let r = Recorder::new();
            for &v in vals {
                r.counter_add("c", v);
                r.record("h", v);
            }
            r
        };
        let a = make(&[1, 2]);
        let b = make(&[10]);
        let left = Recorder::new();
        left.merge_from(&a);
        left.merge_from(&b);
        let right = Recorder::new();
        right.merge_from(&b);
        right.merge_from(&a);
        assert_eq!(left.to_json(false), right.to_json(false));
    }

    #[test]
    fn timing_percentiles_track_the_latency_distribution() {
        let t = TimingStat::default();
        assert_eq!(t.percentile_ns(50.0), 0);
        // 90 fast calls (~1µs bucket) and 10 slow ones (~1ms bucket).
        for _ in 0..90 {
            t.record(1_024);
        }
        for _ in 0..10 {
            t.record(1_048_576);
        }
        assert_eq!(t.percentile_ns(50.0), 1_024);
        assert_eq!(t.percentile_ns(95.0), 1_048_576);
        // Merging keeps the distribution.
        let other = TimingStat::default();
        other.merge_from(&t);
        assert_eq!(other.percentile_ns(95.0), 1_048_576);
        assert_eq!(other.calls(), 100);
    }

    #[test]
    fn json_view_without_timings_hides_wall_clock() {
        let r = Recorder::new();
        r.counter_add("c", 1);
        r.timing_record("t", 12345);
        let with = r.to_json(true);
        let without = r.to_json(false);
        assert!(with.contains("total_ns"));
        assert!(with.contains("p95_ns"));
        assert!(!without.contains("total_ns"));
        assert!(!without.contains("p95_ns"));
        assert!(without.contains("\"calls\": 1"));
        assert!(with.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let r = Recorder::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        let json = r.to_json(false);
        let a = json.find("alpha").unwrap();
        let z = json.find("zeta").unwrap();
        assert!(a < z, "keys must serialize in sorted order");
        assert_eq!(json, r.to_json(false));
    }

    #[test]
    fn summary_mentions_every_section() {
        let r = Recorder::new();
        assert!(r.summary().contains("no metrics"));
        r.counter_add("c", 1);
        r.gauge_set("g", 2);
        r.record("h", 3);
        r.timing_record("t", 4);
        let s = r.summary();
        for needle in ["counters:", "gauges:", "histograms", "timings"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(50_000), "50µs");
        assert_eq!(fmt_ns(50_000_000), "50ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.5s");
    }
}
