//! A minimal JSON reader for the crate's own artifacts.
//!
//! The workspace is offline (no `serde`), but the CI schema check and the
//! determinism tests need to *read* `metrics.json`, not just write it.
//! This is a small recursive-descent parser covering exactly the JSON this
//! crate emits plus the standard escapes — enough to validate any
//! conforming artifact, not a general-purpose library.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers keep integer precision when they have no
/// fraction or exponent (counters can exceed 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer-valued number.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (keys sorted by `BTreeMap`).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The integer value, if this is an integer-valued number.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Why parsing failed, with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON value (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                // Duplicate keys would silently drop data (last-wins); the
                // artifacts this parser validates never emit them, so treat
                // any as corruption rather than guessing which value wins.
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str, so byte
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_string())
        );
        // Integer precision beyond f64.
        assert_eq!(
            parse("18446744073709551615").unwrap().as_int(),
            Some(18446744073709551615)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": 2}], "c": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_int(), Some(1));
        assert_eq!(a[1].get("b").unwrap().as_int(), Some(2));
        assert!(v.get("c").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_duplicate_object_keys() {
        let err = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        // Nested objects are checked too.
        assert!(parse(r#"{"outer": {"x": 1, "x": 1}}"#).is_err());
        // Same key at different depths is fine.
        assert!(parse(r#"{"a": {"a": 1}}"#).is_ok());
    }

    #[test]
    fn round_trips_recorder_output() {
        let r = crate::Recorder::new();
        r.counter_add("c\"quoted\"", 7);
        r.record("h", 3);
        r.timing_record("t", 9);
        let v = parse(&r.to_json(true)).expect("recorder JSON parses");
        assert_eq!(
            v.get("counters").unwrap().get("c\"quoted\"").unwrap(),
            &JsonValue::Int(7)
        );
        assert_eq!(
            v.get("timings")
                .unwrap()
                .get("t")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_int(),
            Some(9)
        );
    }
}
