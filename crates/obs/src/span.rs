//! RAII scoped-span timing.

use std::time::Instant;

/// A scoped timing span. Created by [`crate::span`]; on drop it records
/// one call and the elapsed wall-clock nanoseconds under its name in the
/// active recorder. Spans nest freely (each guard is independent); a span
/// held across a [`crate::with_recorder`] boundary records into whichever
/// recorder is active *when it drops*.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    /// `None` when observability is off — drop becomes a no-op.
    armed: Option<(String, Instant)>,
}

impl Span {
    pub(crate) fn new(name: String) -> Self {
        Span {
            armed: crate::enabled().then(|| (name, Instant::now())),
        }
    }

    pub(crate) fn disarmed() -> Self {
        Span { armed: None }
    }

    /// Ends the span now instead of at end of scope.
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::current().timing_record(&name, ns);
            crate::flight::note("span.close", || format!("{name} {}", crate::fmt_ns(ns)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    #[test]
    fn span_records_calls_and_time_on_drop() {
        if !crate::enabled() {
            return; // BOMBDROID_OBS=off disarms spans.
        }
        let rec = Arc::new(Recorder::new());
        crate::with_recorder(rec.clone(), || {
            for _ in 0..3 {
                let _s = crate::span("unit.work");
            }
            // Nested spans record independently.
            let outer = crate::span("unit.outer");
            let inner = crate::span("unit.inner");
            inner.end();
            outer.end();
        });
        assert_eq!(rec.timing_calls("unit.work"), 3);
        assert_eq!(rec.timing_calls("unit.outer"), 1);
        assert_eq!(rec.timing_calls("unit.inner"), 1);
    }

    #[test]
    fn disarmed_span_records_nothing() {
        let rec = Arc::new(Recorder::new());
        crate::with_recorder(rec.clone(), || {
            let _s = Span::disarmed();
        });
        assert!(rec.is_empty());
    }
}
