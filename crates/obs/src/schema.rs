//! Schema validation for `metrics.json` artifacts.
//!
//! CI runs this (via the `metrics_check` binary in `bombdroid-bench`)
//! against the artifact a `repro` smoke run produces, so a PR that breaks
//! the artifact shape, regresses a counter to garbage, or bumps the schema
//! without coordinating fails before merge.

use crate::json::{parse, JsonValue};
use crate::recorder::SCHEMA_VERSION;

/// Validates `text` as a `metrics.json` artifact.
///
/// Checks, in order:
/// * parses as a JSON object;
/// * `schema_version` equals [`SCHEMA_VERSION`];
/// * the `counters`, `gauges`, `histograms`, and `timings` sections are
///   present and are objects;
/// * counters are non-negative integers;
/// * every histogram has non-negative `count`/`sum`/`min`/`max`, bucket
///   pairs `[index, count]` with indices inside the fixed bucket range,
///   and bucket counts summing to `count`;
/// * every timing has a non-negative `calls` (and `total_ns` when present);
/// * every name in `required` appears in some section.
///
/// Returns a human-readable description of the first violation.
pub fn validate_metrics(text: &str, required: &[&str]) -> Result<(), String> {
    let root = parse(text).map_err(|e| e.to_string())?;
    let root = root
        .as_object()
        .ok_or_else(|| "top level is not an object".to_string())?;

    match root.get("schema_version").and_then(JsonValue::as_int) {
        Some(v) if v == SCHEMA_VERSION as i128 => {}
        Some(v) => return Err(format!("schema_version {v} != expected {SCHEMA_VERSION}")),
        None => return Err("missing integer schema_version".to_string()),
    }

    let section = |name: &str| -> Result<&JsonValue, String> {
        root.get(name)
            .filter(|v| v.as_object().is_some())
            .ok_or_else(|| format!("missing object section {name:?}"))
    };
    let counters = section("counters")?;
    section("gauges")?;
    let histograms = section("histograms")?;
    let timings = section("timings")?;

    for (name, v) in counters.as_object().unwrap() {
        match v.as_int() {
            Some(n) if n >= 0 => {}
            _ => return Err(format!("counter {name:?} is not a non-negative integer")),
        }
    }

    for (name, h) in histograms.as_object().unwrap() {
        let field = |key: &str| -> Result<i128, String> {
            h.get(key)
                .and_then(JsonValue::as_int)
                .filter(|n| *n >= 0)
                .ok_or_else(|| format!("histogram {name:?} field {key:?} invalid"))
        };
        let count = field("count")?;
        field("sum")?;
        field("min")?;
        field("max")?;
        let buckets = h
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("histogram {name:?} missing buckets array"))?;
        let mut total = 0i128;
        for b in buckets {
            let pair = b
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histogram {name:?} bucket is not a pair"))?;
            let index = pair[0].as_int().unwrap_or(-1);
            let n = pair[1].as_int().unwrap_or(-1);
            if index < 0 || index >= crate::hist::BUCKETS as i128 || n < 0 {
                return Err(format!("histogram {name:?} bucket [{index}, {n}] invalid"));
            }
            total += n;
        }
        if total != count {
            return Err(format!(
                "histogram {name:?}: bucket counts sum to {total}, count is {count}"
            ));
        }
    }

    for (name, t) in timings.as_object().unwrap() {
        match t.get("calls").and_then(JsonValue::as_int) {
            Some(n) if n >= 0 => {}
            _ => return Err(format!("timing {name:?} missing non-negative calls")),
        }
        for key in ["total_ns", "p50_ns", "p95_ns"] {
            if let Some(ns) = t.get(key) {
                if ns.as_int().filter(|n| *n >= 0).is_none() {
                    return Err(format!("timing {name:?} {key} invalid"));
                }
            }
        }
    }

    for name in required {
        let present = ["counters", "gauges", "histograms", "timings"]
            .iter()
            .any(|s| root[*s].get(name).is_some());
        if !present {
            return Err(format!(
                "required metric {name:?} absent from every section"
            ));
        }
    }

    Ok(())
}

/// Validates `text` as a `flight.json` artifact (see [`crate::flight`]).
///
/// Checks: parses as an object; `schema_version` equals
/// [`crate::flight::FLIGHT_SCHEMA_VERSION`]; `capacity` is a positive
/// integer and `dropped` non-negative; `events` is an array of objects
/// whose `seq`/`at_ns` are non-negative integers in non-decreasing order
/// and whose `kind`/`detail` are strings; the event count never exceeds
/// `capacity`.
pub fn validate_flight(text: &str) -> Result<(), String> {
    let root = parse(text).map_err(|e| e.to_string())?;
    let root = root
        .as_object()
        .ok_or_else(|| "top level is not an object".to_string())?;

    match root.get("schema_version").and_then(JsonValue::as_int) {
        Some(v) if v == crate::flight::FLIGHT_SCHEMA_VERSION as i128 => {}
        Some(v) => {
            return Err(format!(
                "flight schema_version {v} != expected {}",
                crate::flight::FLIGHT_SCHEMA_VERSION
            ))
        }
        None => return Err("missing integer schema_version".to_string()),
    }

    let capacity = root
        .get("capacity")
        .and_then(JsonValue::as_int)
        .filter(|n| *n > 0)
        .ok_or_else(|| "capacity must be a positive integer".to_string())?;
    root.get("dropped")
        .and_then(JsonValue::as_int)
        .filter(|n| *n >= 0)
        .ok_or_else(|| "dropped must be a non-negative integer".to_string())?;

    let events = root
        .get("events")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing events array".to_string())?;
    if events.len() as i128 > capacity {
        return Err(format!(
            "{} events exceed capacity {capacity}",
            events.len()
        ));
    }
    let mut prev_seq = -1i128;
    let mut prev_at = -1i128;
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| -> Result<i128, String> {
            ev.get(key)
                .and_then(JsonValue::as_int)
                .filter(|n| *n >= 0)
                .ok_or_else(|| format!("event {i} field {key:?} invalid"))
        };
        let seq = field("seq")?;
        let at = field("at_ns")?;
        if seq <= prev_seq {
            return Err(format!("event {i}: seq {seq} not increasing"));
        }
        if at < prev_at {
            return Err(format!("event {i}: at_ns {at} went backwards"));
        }
        prev_seq = seq;
        prev_at = at;
        for key in ["kind", "detail"] {
            if ev.get(key).and_then(JsonValue::as_str).is_none() {
                return Err(format!("event {i} field {key:?} is not a string"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Recorder {
        let r = Recorder::new();
        r.counter_add("fleet.tasks", 12);
        r.gauge_set("workers", 4);
        r.record("pipeline.bombs_per_app", 67);
        r.record("pipeline.bombs_per_app", 43);
        r.timing_record("pipeline.profile", 1_000_000);
        r
    }

    #[test]
    fn recorder_exports_validate() {
        let r = sample();
        validate_metrics(&r.to_json(true), &["fleet.tasks", "pipeline.profile"])
            .expect("full export validates");
        validate_metrics(&r.to_json(false), &["pipeline.bombs_per_app"])
            .expect("deterministic export validates");
    }

    #[test]
    fn missing_required_metric_fails() {
        let err = validate_metrics(&sample().to_json(true), &["not.there"]).unwrap_err();
        assert!(err.contains("not.there"), "{err}");
    }

    #[test]
    fn wrong_schema_version_fails() {
        let json = sample().to_json(true).replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = validate_metrics(&json, &[]).unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn negative_counter_fails() {
        let json = sample()
            .to_json(true)
            .replace("\"fleet.tasks\": 12", "\"fleet.tasks\": -1");
        let err = validate_metrics(&json, &[]).unwrap_err();
        assert!(err.contains("fleet.tasks"), "{err}");
    }

    #[test]
    fn inconsistent_histogram_buckets_fail() {
        let json = sample()
            .to_json(true)
            .replace("\"count\": 2", "\"count\": 5");
        let err = validate_metrics(&json, &[]).unwrap_err();
        assert!(err.contains("bucket counts"), "{err}");
    }

    #[test]
    fn non_object_and_missing_sections_fail() {
        assert!(validate_metrics("[]", &[]).is_err());
        assert!(validate_metrics("{\"schema_version\": 1}", &[]).is_err());
        assert!(validate_metrics("not json", &[]).is_err());
    }

    #[test]
    fn flight_validation_accepts_good_and_rejects_bad() {
        let good = r#"{
          "schema_version": 1,
          "capacity": 4,
          "dropped": 2,
          "events": [
            {"seq": 5, "at_ns": 10, "kind": "a", "detail": "x"},
            {"seq": 6, "at_ns": 10, "kind": "b", "detail": "y"}
          ]
        }"#;
        validate_flight(good).expect("well-formed flight log validates");

        let empty = r#"{"schema_version": 1, "capacity": 8, "dropped": 0, "events": []}"#;
        validate_flight(empty).expect("empty ring validates");

        assert!(validate_flight("[]").is_err());
        assert!(
            validate_flight(&good.replace("\"schema_version\": 1", "\"schema_version\": 9"))
                .unwrap_err()
                .contains("schema_version")
        );
        assert!(validate_flight(&good.replace("\"capacity\": 4", "\"capacity\": 0")).is_err());
        // Too many events for the declared capacity.
        assert!(
            validate_flight(&good.replace("\"capacity\": 4", "\"capacity\": 1"))
                .unwrap_err()
                .contains("exceed")
        );
        // Non-increasing sequence numbers.
        assert!(validate_flight(&good.replace("\"seq\": 6", "\"seq\": 5"))
            .unwrap_err()
            .contains("not increasing"));
        // at_ns must be monotone.
        assert!(validate_flight(&good.replace(
            "\"at_ns\": 10, \"kind\": \"b\"",
            "\"at_ns\": 3, \"kind\": \"b\""
        ))
        .unwrap_err()
        .contains("backwards"));
        // kind/detail must be strings.
        assert!(validate_flight(&good.replace("\"detail\": \"y\"", "\"detail\": 7")).is_err());
    }
}
