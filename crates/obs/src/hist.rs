//! Fixed-size log-bucketed histograms.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b - 1]` — i.e. a value lands in the bucket matching its
//! bit length. 65 buckets cover the whole `u64` range with no allocation
//! and no per-record branching beyond `leading_zeros`, so recording stays
//! cheap enough to leave on by default.
//!
//! All fields are atomics: concurrent recorders never lock, and merging
//! histograms is a bucket-wise sum, which commutes — so the fleet engine's
//! task-index-order merge produces identical content for any thread count.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (`0` plus one per possible bit length).
pub const BUCKETS: usize = 65;

/// Returns the bucket index for `value`: `0` for `0`, otherwise the value's
/// bit length (`1` for `1`, `2` for `2..=3`, `3` for `4..=7`, …).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The smallest value a bucket covers (its inclusive lower bound).
pub fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// A log-bucketed histogram of non-negative integer samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `0` if the histogram is empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest sample, or `0` if the histogram is empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or `0.0` if the histogram is empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The non-empty buckets as `(bucket index, sample count)` pairs in
    /// index order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    /// Adds pre-aggregated parts into `self` — the snapshot-restore path.
    ///
    /// `buckets` are `(bucket index, sample count)` pairs as produced by
    /// [`Histogram::nonzero_buckets`]. Restoring an exported histogram via
    /// this method reproduces its deterministic JSON bit-for-bit, which a
    /// per-sample replay could not (the original samples are gone; only
    /// their bucket, count, sum, min and max survive the export).
    pub fn absorb_raw(&self, count: u64, sum: u64, min: u64, max: u64, buckets: &[(usize, u64)]) {
        if count == 0 {
            return;
        }
        for &(i, n) in buckets {
            if i < BUCKETS && n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.min.fetch_min(min, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Adds every sample of `other` into `self` (bucket-wise; commutative).
    pub fn merge_from(&self, other: &Histogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every power of two opens a new bucket; its predecessor closes one.
        for b in 1..64 {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_index(lo), b, "floor of bucket {b}");
            assert_eq!(bucket_index(lo * 2 - 1), b, "ceiling of bucket {b}");
            assert_eq!(bucket_floor(b), lo);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        for v in [5u64, 9, 0, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_014);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000);
        assert_eq!(h.mean(), 253.5);
        // 0→bucket 0, 5→bucket 3, 9→bucket 4, 1000→bucket 10.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (3, 1), (4, 1), (10, 1)]);
    }

    #[test]
    fn merge_is_a_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(2);
        b.record(7);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 112);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 100);
        assert_eq!(a.nonzero_buckets(), vec![(2, 2), (3, 1), (7, 1)]);
        // Merging an empty histogram keeps min untouched.
        a.merge_from(&Histogram::new());
        assert_eq!(a.min(), 2);
    }
}
