//! `bombdroid-obs` — the workspace-wide metrics & tracing layer.
//!
//! The paper's evaluation (§7–§8) is built on measurement: Traceview
//! profiling, per-phase protection cost (Table 5), trigger/response
//! latency (Table 3). This crate is the reproduction's equivalent
//! instrument: a zero-dependency facade the protection pipeline, the fleet
//! engine, the VM, and the bench harness all record into, with two
//! exporters — a human summary table and a schema-versioned
//! `metrics.json` artifact that CI validates and future runs can diff.
//!
//! # Model
//!
//! * **Counters** — monotonic `u64` sums (`obs::counter_add`).
//! * **Gauges** — last-write-wins `i64` values (`obs::gauge_set`).
//! * **Histograms** — log-bucketed distributions of deterministic values
//!   (`obs::record`), e.g. bombs injected per app.
//! * **Timings/spans** — wall-clock intervals (`obs::span` RAII guards or
//!   `obs::timing_record`). The *call count* of a timing is deterministic;
//!   the nanoseconds are not, and the deterministic export view
//!   ([`Recorder::to_json`] with `include_timings = false`) omits them.
//!
//! # Recorder scoping
//!
//! Every facade call records into the *active* recorder: the top of a
//! thread-local stack managed by [`with_recorder`], falling back to the
//! process-wide [`global`] recorder. The fleet engine gives each task its
//! own recorder and merges them into the fleet caller's recorder **in
//! task-index order** after the run, which preserves the engine's
//! bit-identical-across-thread-counts guarantee: sums, histogram buckets,
//! and call counts commute, and the one non-commutative operation (gauge
//! overwrite) happens in a deterministic order.
//!
//! # Modes
//!
//! `BOMBDROID_OBS` controls the layer process-wide:
//!
//! * `off` — facade calls are no-ops (one atomic load each).
//! * `summary` — record everything; `repro` prints the summary table but
//!   writes no artifact.
//! * `full` (default) — record everything; `repro` also writes
//!   `target/repro_output/metrics.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod flight;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod schema;
mod span;
pub mod stream;

pub use hist::Histogram;
pub use recorder::{fmt_ns, Recorder, TimingStat, SCHEMA_VERSION};
pub use schema::{validate_flight, validate_metrics};
pub use span::Span;
pub use stream::{AggregatorSnapshot, ShardAggregator, WindowSummary};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// How much the observability layer does, per `BOMBDROID_OBS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Record nothing; export nothing.
    Off,
    /// Record; print the human summary; no artifact.
    Summary,
    /// Record; print the summary; write `metrics.json`. The default.
    Full,
}

impl ObsMode {
    /// Parses a `BOMBDROID_OBS` value; unknown strings fall back to the
    /// default (`Full`) so a typo degrades to "more data", never silence.
    pub fn parse(s: &str) -> ObsMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => ObsMode::Off,
            "summary" => ObsMode::Summary,
            _ => ObsMode::Full,
        }
    }
}

// 0 = uninitialised, 1 = Off, 2 = Summary, 3 = Full. An AtomicU8 rather
// than a OnceLock so bench harnesses can flip modes inside one process to
// measure off-vs-full overhead ([`set_mode`]).
static MODE: AtomicU8 = AtomicU8::new(0);

fn encode_mode(m: ObsMode) -> u8 {
    match m {
        ObsMode::Off => 1,
        ObsMode::Summary => 2,
        ObsMode::Full => 3,
    }
}

/// The process-wide mode: read from `BOMBDROID_OBS` on first use, but
/// overridable at runtime via [`set_mode`].
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => ObsMode::Off,
        2 => ObsMode::Summary,
        3 => ObsMode::Full,
        _ => {
            let m = std::env::var("BOMBDROID_OBS")
                .map(|s| ObsMode::parse(&s))
                .unwrap_or(ObsMode::Full);
            // First writer wins against a concurrent set_mode.
            let _ = MODE.compare_exchange(0, encode_mode(m), Ordering::Relaxed, Ordering::Relaxed);
            mode()
        }
    }
}

/// Forces the process-wide mode, overriding `BOMBDROID_OBS`. Intended for
/// harnesses (the perf bin benches `off` vs `full` facade cost in one
/// process); production code should let the environment decide.
pub fn set_mode(m: ObsMode) {
    MODE.store(encode_mode(m), Ordering::Relaxed);
}

/// Whether recording is enabled at all.
pub fn enabled() -> bool {
    mode() != ObsMode::Off
}

/// The process-wide recorder everything merges into by default.
pub fn global() -> Arc<Recorder> {
    static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Recorder::new())).clone()
}

thread_local! {
    static STACK: RefCell<Vec<Arc<Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// The recorder facade calls currently resolve to on this thread: the
/// innermost [`with_recorder`] scope, or [`global`] outside any scope.
pub fn current() -> Arc<Recorder> {
    STACK
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(global)
}

/// Runs `f` with `rec` as this thread's active recorder. Scopes nest; the
/// previous recorder is restored when `f` returns *or unwinds* (the fleet
/// engine catches task panics outside this scope).
pub fn with_recorder<R>(rec: Arc<Recorder>, f: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    STACK.with(|s| s.borrow_mut().push(rec));
    let _pop = PopOnDrop;
    f()
}

/// Adds `delta` to a counter in the active recorder.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        current().counter_add(name, delta);
    }
}

/// Adds `delta` to a counter only when it is nonzero — the sparse-counter
/// idiom used by per-session and per-campaign publishers (the VM's op-mix
/// counters, the guided fuzzer's `fuzz.*` family). Skipping zeros keeps
/// recorders small without breaking merge determinism: the skip depends
/// only on the deterministic value, never on scheduling, so merged totals
/// stay identical for any worker count.
pub fn counter_add_nz(name: &str, delta: u64) {
    if delta > 0 {
        counter_add(name, delta);
    }
}

/// Sets a gauge in the active recorder.
pub fn gauge_set(name: &str, value: i64) {
    if enabled() {
        current().gauge_set(name, value);
    }
}

/// Records a deterministic value into a histogram in the active recorder.
pub fn record(name: &str, value: u64) {
    if enabled() {
        current().record(name, value);
    }
}

/// Records one wall-clock interval under `name` in the active recorder.
pub fn timing_record(name: &str, ns: u64) {
    if enabled() {
        current().timing_record(name, ns);
    }
}

/// Opens a timing span; it records into the active recorder when dropped.
pub fn span(name: impl Into<String>) -> Span {
    if enabled() {
        Span::new(name.into())
    } else {
        Span::disarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(ObsMode::parse("off"), ObsMode::Off);
        assert_eq!(ObsMode::parse("0"), ObsMode::Off);
        assert_eq!(ObsMode::parse("SUMMARY"), ObsMode::Summary);
        assert_eq!(ObsMode::parse("full"), ObsMode::Full);
        assert_eq!(ObsMode::parse("anything-else"), ObsMode::Full);
    }

    #[test]
    fn with_recorder_scopes_and_restores() {
        if !enabled() {
            return; // BOMBDROID_OBS=off turns the facade into no-ops.
        }
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        with_recorder(outer.clone(), || {
            counter_add("c", 1);
            with_recorder(inner.clone(), || {
                counter_add("c", 10);
            });
            counter_add("c", 2);
        });
        assert_eq!(outer.counter_value("c"), 3);
        assert_eq!(inner.counter_value("c"), 10);
    }

    #[test]
    fn scope_pops_on_unwind() {
        let rec = Arc::new(Recorder::new());
        let result = std::panic::catch_unwind(|| {
            with_recorder(rec.clone(), || panic!("boom"));
        });
        assert!(result.is_err());
        // The stack is clean: this lands in the global recorder, not `rec`.
        counter_add("after_unwind", 1);
        assert_eq!(rec.counter_value("after_unwind"), 0);
    }

    #[test]
    fn facade_defaults_to_global() {
        if !enabled() {
            return;
        }
        counter_add("obs.lib.global_smoke", 1);
        assert!(global().counter_value("obs.lib.global_smoke") >= 1);
    }
}
