//! `parse(export(recorder))` round-trip coverage for the obs JSON layer,
//! plus malformed-input behaviour: every bad document must come back as a
//! `ParseError`, never a panic.

use bombdroid_obs::json::{self, JsonValue};
use bombdroid_obs::Recorder;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Whatever a recorder accumulates, its JSON export parses back to the
    /// same counters, gauges, histogram summaries, and timing call counts.
    #[test]
    fn recorder_export_parses_back_to_recorded_values(
        counters in proptest::collection::vec(("[a-z_]{1,10}", 0u64..1_000_000u64), 0..8),
        gauges in proptest::collection::vec(("[a-z_]{1,10}", -500i64..500i64), 0..6),
        hist_values in proptest::collection::vec(0u64..100_000u64, 0..16),
        timing_calls in 0u64..12u64,
        include_timings in any::<bool>(),
    ) {
        let r = Recorder::new();
        // Repeated names are legal at the API level: counter adds
        // accumulate, gauge sets overwrite (last wins).
        let mut want_counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, delta) in &counters {
            r.counter_add(name, *delta);
            *want_counters.entry(name.clone()).or_default() += *delta;
        }
        let mut want_gauges: BTreeMap<String, i64> = BTreeMap::new();
        for (name, value) in &gauges {
            r.gauge_set(name, *value);
            want_gauges.insert(name.clone(), *value);
        }
        for v in &hist_values {
            r.record("h", *v);
        }
        for _ in 0..timing_calls {
            r.timing_record("t", 5);
        }

        let doc = json::parse(&r.to_json(include_timings)).expect("export must parse");
        prop_assert!(doc.get("schema_version").and_then(JsonValue::as_int).is_some());
        for (name, total) in &want_counters {
            let got = doc.get("counters").and_then(|c| c.get(name)).and_then(JsonValue::as_int);
            prop_assert_eq!(got, Some(*total as i128), "counter {}", name);
        }
        for (name, value) in &want_gauges {
            let got = doc.get("gauges").and_then(|g| g.get(name)).and_then(JsonValue::as_int);
            prop_assert_eq!(got, Some(*value as i128), "gauge {}", name);
        }
        if !hist_values.is_empty() {
            let h = doc.get("histograms").and_then(|h| h.get("h")).expect("histogram present");
            prop_assert_eq!(
                h.get("count").and_then(JsonValue::as_int),
                Some(hist_values.len() as i128)
            );
            prop_assert_eq!(
                h.get("sum").and_then(JsonValue::as_int),
                Some(hist_values.iter().map(|v| *v as i128).sum())
            );
        }
        if timing_calls > 0 {
            let t = doc.get("timings").and_then(|t| t.get("t")).expect("timing present");
            prop_assert_eq!(t.get("calls").and_then(JsonValue::as_int), Some(timing_calls as i128));
            prop_assert_eq!(
                t.get("total_ns").is_some(),
                include_timings,
                "total_ns present iff timings included"
            );
        }
    }

    /// Truncating a valid export anywhere never parses and never panics.
    #[test]
    fn truncated_exports_error_cleanly(cut_permille in 0usize..1000usize) {
        let r = Recorder::new();
        r.counter_add("tasks_completed", 41);
        r.gauge_set("pool_width", 8);
        r.record("latency", 120);
        let full = r.to_json(true);
        let mut cut = full.len() * cut_permille / 1000;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut < full.trim_end().len() {
            prop_assert!(json::parse(&full[..cut]).is_err());
        }
    }
}

#[test]
fn malformed_documents_are_errors_not_panics() {
    let cases = [
        // Truncations.
        r#"{"counters": {"#,
        r#"{"counters": {"a": "#,
        r#"["#,
        // Bad escapes.
        r#""\x""#,
        r#""\u12""#,
        r#""\u12zz""#,
        r#""\ud800""#, // lone surrogate is not a char
        // Duplicate keys (silent last-wins would drop data).
        r#"{"k": 1, "k": 1}"#,
        // Structural garbage.
        r#"{"a" 1}"#,
        r#"{"a": 1,}"#,
        r#"{1: 2}"#,
        "nul",
        "--1",
        "1e",
    ];
    for case in cases {
        assert!(json::parse(case).is_err(), "must reject: {case}");
    }
}
