/root/repo/target/release/examples/market_simulation-0cb37cfe05f8034f.d: examples/market_simulation.rs

/root/repo/target/release/examples/market_simulation-0cb37cfe05f8034f: examples/market_simulation.rs

examples/market_simulation.rs:
