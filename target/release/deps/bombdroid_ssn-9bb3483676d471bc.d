/root/repo/target/release/deps/bombdroid_ssn-9bb3483676d471bc.d: crates/ssn/src/lib.rs

/root/repo/target/release/deps/libbombdroid_ssn-9bb3483676d471bc.rlib: crates/ssn/src/lib.rs

/root/repo/target/release/deps/libbombdroid_ssn-9bb3483676d471bc.rmeta: crates/ssn/src/lib.rs

crates/ssn/src/lib.rs:
