/root/repo/target/release/deps/bombdroid_bench-5a56aa6d2f6d527c.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/analysts.rs crates/bench/src/experiments/brute.rs crates/bench/src/experiments/codesize.rs crates/bench/src/experiments/falsepos.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/harness.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/print.rs

/root/repo/target/release/deps/libbombdroid_bench-5a56aa6d2f6d527c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/analysts.rs crates/bench/src/experiments/brute.rs crates/bench/src/experiments/codesize.rs crates/bench/src/experiments/falsepos.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/harness.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/print.rs

/root/repo/target/release/deps/libbombdroid_bench-5a56aa6d2f6d527c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/analysts.rs crates/bench/src/experiments/brute.rs crates/bench/src/experiments/codesize.rs crates/bench/src/experiments/falsepos.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/harness.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/print.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/analysts.rs:
crates/bench/src/experiments/brute.rs:
crates/bench/src/experiments/codesize.rs:
crates/bench/src/experiments/falsepos.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/harness.rs:
crates/bench/src/experiments/resilience.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table5.rs:
crates/bench/src/print.rs:
