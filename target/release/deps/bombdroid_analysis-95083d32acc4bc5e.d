/root/repo/target/release/deps/bombdroid_analysis-95083d32acc4bc5e.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

/root/repo/target/release/deps/libbombdroid_analysis-95083d32acc4bc5e.rlib: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

/root/repo/target/release/deps/libbombdroid_analysis-95083d32acc4bc5e.rmeta: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/entropy.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/qc.rs:
crates/analysis/src/slice.rs:
