/root/repo/target/release/deps/bombdroid-2adf6fc8e40d448c.d: src/lib.rs

/root/repo/target/release/deps/libbombdroid-2adf6fc8e40d448c.rlib: src/lib.rs

/root/repo/target/release/deps/libbombdroid-2adf6fc8e40d448c.rmeta: src/lib.rs

src/lib.rs:
