/root/repo/target/release/deps/bombdroid_runtime-4c65b47404b2ecca.d: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

/root/repo/target/release/deps/libbombdroid_runtime-4c65b47404b2ecca.rlib: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

/root/repo/target/release/deps/libbombdroid_runtime-4c65b47404b2ecca.rmeta: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

crates/runtime/src/lib.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/env.rs:
crates/runtime/src/package.rs:
crates/runtime/src/telemetry.rs:
crates/runtime/src/value.rs:
crates/runtime/src/vm.rs:
