/root/repo/target/release/deps/bombdroid_corpus-427307d859d33bb7.d: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

/root/repo/target/release/deps/libbombdroid_corpus-427307d859d33bb7.rlib: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

/root/repo/target/release/deps/libbombdroid_corpus-427307d859d33bb7.rmeta: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/flagship.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profiles.rs:
crates/corpus/src/stats.rs:
