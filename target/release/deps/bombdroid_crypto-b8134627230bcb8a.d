/root/repo/target/release/deps/bombdroid_crypto-b8134627230bcb8a.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libbombdroid_crypto-b8134627230bcb8a.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libbombdroid_crypto-b8134627230bcb8a.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/blob.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/kdf.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
