/root/repo/target/release/deps/bombdroid_apk-ad81b25a9708bbc5.d: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

/root/repo/target/release/deps/libbombdroid_apk-ad81b25a9708bbc5.rlib: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

/root/repo/target/release/deps/libbombdroid_apk-ad81b25a9708bbc5.rmeta: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

crates/apk/src/lib.rs:
crates/apk/src/container.rs:
crates/apk/src/manifest.rs:
crates/apk/src/resources.rs:
crates/apk/src/rsa.rs:
crates/apk/src/stego.rs:
