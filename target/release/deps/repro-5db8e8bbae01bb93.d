/root/repo/target/release/deps/repro-5db8e8bbae01bb93.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5db8e8bbae01bb93: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
