/root/repo/target/release/deps/bombdroid-166530c3cfe5e884.d: src/lib.rs

/root/repo/target/release/deps/libbombdroid-166530c3cfe5e884.rlib: src/lib.rs

/root/repo/target/release/deps/libbombdroid-166530c3cfe5e884.rmeta: src/lib.rs

src/lib.rs:
