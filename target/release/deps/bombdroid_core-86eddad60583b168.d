/root/repo/target/release/deps/bombdroid_core-86eddad60583b168.d: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs

/root/repo/target/release/deps/libbombdroid_core-86eddad60583b168.rlib: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs

/root/repo/target/release/deps/libbombdroid_core-86eddad60583b168.rmeta: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs

crates/core/src/lib.rs:
crates/core/src/bomb.rs:
crates/core/src/config.rs:
crates/core/src/fleet.rs:
crates/core/src/fragment.rs:
crates/core/src/inner.rs:
crates/core/src/naive.rs:
crates/core/src/payload.rs:
crates/core/src/pipeline.rs:
crates/core/src/profiling.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
crates/core/src/sites.rs:
