/root/repo/target/release/deps/bombdroid_dex-ffb2ee6093d7f2fd.d: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

/root/repo/target/release/deps/libbombdroid_dex-ffb2ee6093d7f2fd.rlib: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

/root/repo/target/release/deps/libbombdroid_dex-ffb2ee6093d7f2fd.rmeta: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

crates/dex/src/lib.rs:
crates/dex/src/asm.rs:
crates/dex/src/builder.rs:
crates/dex/src/class.rs:
crates/dex/src/dex_file.rs:
crates/dex/src/instr.rs:
crates/dex/src/validate.rs:
crates/dex/src/value.rs:
crates/dex/src/wire.rs:
