/root/repo/target/debug/deps/bombdroid_dex-0eeb051ac2b10111.d: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

/root/repo/target/debug/deps/libbombdroid_dex-0eeb051ac2b10111.rlib: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

/root/repo/target/debug/deps/libbombdroid_dex-0eeb051ac2b10111.rmeta: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs

crates/dex/src/lib.rs:
crates/dex/src/asm.rs:
crates/dex/src/builder.rs:
crates/dex/src/class.rs:
crates/dex/src/dex_file.rs:
crates/dex/src/instr.rs:
crates/dex/src/validate.rs:
crates/dex/src/value.rs:
crates/dex/src/wire.rs:
