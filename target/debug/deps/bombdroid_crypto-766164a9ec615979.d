/root/repo/target/debug/deps/bombdroid_crypto-766164a9ec615979.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/bombdroid_crypto-766164a9ec615979: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/blob.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/kdf.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
