/root/repo/target/debug/deps/repro-c7ac2d9d1af2f7e8.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c7ac2d9d1af2f7e8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
