/root/repo/target/debug/deps/vm_semantics-8fec1e1456b1feb6.d: crates/runtime/tests/vm_semantics.rs

/root/repo/target/debug/deps/vm_semantics-8fec1e1456b1feb6: crates/runtime/tests/vm_semantics.rs

crates/runtime/tests/vm_semantics.rs:
