/root/repo/target/debug/deps/attack_surface-1e14ac9cf7e72949.d: tests/attack_surface.rs Cargo.toml

/root/repo/target/debug/deps/libattack_surface-1e14ac9cf7e72949.rmeta: tests/attack_surface.rs Cargo.toml

tests/attack_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
