/root/repo/target/debug/deps/attack_surface-05e14ded5fbcd738.d: tests/attack_surface.rs

/root/repo/target/debug/deps/attack_surface-05e14ded5fbcd738: tests/attack_surface.rs

tests/attack_surface.rs:
