/root/repo/target/debug/deps/bombdroid_analysis-de9279c0ebb62245.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

/root/repo/target/debug/deps/bombdroid_analysis-de9279c0ebb62245: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/entropy.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/qc.rs:
crates/analysis/src/slice.rs:
