/root/repo/target/debug/deps/bombdroid_apk-cc62e6011a995b29.d: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

/root/repo/target/debug/deps/libbombdroid_apk-cc62e6011a995b29.rlib: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

/root/repo/target/debug/deps/libbombdroid_apk-cc62e6011a995b29.rmeta: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

crates/apk/src/lib.rs:
crates/apk/src/container.rs:
crates/apk/src/manifest.rs:
crates/apk/src/resources.rs:
crates/apk/src/rsa.rs:
crates/apk/src/stego.rs:
