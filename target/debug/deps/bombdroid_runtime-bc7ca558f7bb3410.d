/root/repo/target/debug/deps/bombdroid_runtime-bc7ca558f7bb3410.d: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

/root/repo/target/debug/deps/libbombdroid_runtime-bc7ca558f7bb3410.rlib: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

/root/repo/target/debug/deps/libbombdroid_runtime-bc7ca558f7bb3410.rmeta: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

crates/runtime/src/lib.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/env.rs:
crates/runtime/src/package.rs:
crates/runtime/src/telemetry.rs:
crates/runtime/src/value.rs:
crates/runtime/src/vm.rs:
