/root/repo/target/debug/deps/bombdroid-30c7c864cde10052.d: src/lib.rs

/root/repo/target/debug/deps/bombdroid-30c7c864cde10052: src/lib.rs

src/lib.rs:
