/root/repo/target/debug/deps/bombdroid_corpus-240dfdbf3b4f74b8.d: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/bombdroid_corpus-240dfdbf3b4f74b8: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/flagship.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profiles.rs:
crates/corpus/src/stats.rs:
