/root/repo/target/debug/deps/property-e490e9669e989393.d: tests/property.rs

/root/repo/target/debug/deps/property-e490e9669e989393: tests/property.rs

tests/property.rs:
