/root/repo/target/debug/deps/bombdroid_apk-00a699e77e3e36a4.d: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_apk-00a699e77e3e36a4.rmeta: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs Cargo.toml

crates/apk/src/lib.rs:
crates/apk/src/container.rs:
crates/apk/src/manifest.rs:
crates/apk/src/resources.rs:
crates/apk/src/rsa.rs:
crates/apk/src/stego.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
