/root/repo/target/debug/deps/vm_semantics-ec6b0784e360f96c.d: crates/runtime/tests/vm_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libvm_semantics-ec6b0784e360f96c.rmeta: crates/runtime/tests/vm_semantics.rs Cargo.toml

crates/runtime/tests/vm_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
