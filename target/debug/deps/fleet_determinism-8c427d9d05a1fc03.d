/root/repo/target/debug/deps/fleet_determinism-8c427d9d05a1fc03.d: crates/bench/tests/fleet_determinism.rs

/root/repo/target/debug/deps/fleet_determinism-8c427d9d05a1fc03: crates/bench/tests/fleet_determinism.rs

crates/bench/tests/fleet_determinism.rs:
