/root/repo/target/debug/deps/bombdroid_ssn-24e1a8cf51e29a57.d: crates/ssn/src/lib.rs

/root/repo/target/debug/deps/libbombdroid_ssn-24e1a8cf51e29a57.rlib: crates/ssn/src/lib.rs

/root/repo/target/debug/deps/libbombdroid_ssn-24e1a8cf51e29a57.rmeta: crates/ssn/src/lib.rs

crates/ssn/src/lib.rs:
