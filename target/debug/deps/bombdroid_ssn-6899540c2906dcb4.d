/root/repo/target/debug/deps/bombdroid_ssn-6899540c2906dcb4.d: crates/ssn/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_ssn-6899540c2906dcb4.rmeta: crates/ssn/src/lib.rs Cargo.toml

crates/ssn/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
