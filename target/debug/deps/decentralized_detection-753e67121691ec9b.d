/root/repo/target/debug/deps/decentralized_detection-753e67121691ec9b.d: tests/decentralized_detection.rs Cargo.toml

/root/repo/target/debug/deps/libdecentralized_detection-753e67121691ec9b.rmeta: tests/decentralized_detection.rs Cargo.toml

tests/decentralized_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
