/root/repo/target/debug/deps/static_analysis-74d5296d28215f69.d: crates/bench/benches/static_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_analysis-74d5296d28215f69.rmeta: crates/bench/benches/static_analysis.rs Cargo.toml

crates/bench/benches/static_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
