/root/repo/target/debug/deps/repro-7162a5db34b7d02b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7162a5db34b7d02b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
