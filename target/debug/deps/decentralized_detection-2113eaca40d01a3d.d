/root/repo/target/debug/deps/decentralized_detection-2113eaca40d01a3d.d: tests/decentralized_detection.rs

/root/repo/target/debug/deps/decentralized_detection-2113eaca40d01a3d: tests/decentralized_detection.rs

tests/decentralized_detection.rs:
