/root/repo/target/debug/deps/bombdroid_apk-ac024644d0d4c524.d: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

/root/repo/target/debug/deps/bombdroid_apk-ac024644d0d4c524: crates/apk/src/lib.rs crates/apk/src/container.rs crates/apk/src/manifest.rs crates/apk/src/resources.rs crates/apk/src/rsa.rs crates/apk/src/stego.rs

crates/apk/src/lib.rs:
crates/apk/src/container.rs:
crates/apk/src/manifest.rs:
crates/apk/src/resources.rs:
crates/apk/src/rsa.rs:
crates/apk/src/stego.rs:
