/root/repo/target/debug/deps/bombdroid_crypto-7aaeeb1df6645f0c.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_crypto-7aaeeb1df6645f0c.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/blob.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/kdf.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
