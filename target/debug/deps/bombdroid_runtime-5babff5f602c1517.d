/root/repo/target/debug/deps/bombdroid_runtime-5babff5f602c1517.d: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_runtime-5babff5f602c1517.rmeta: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/env.rs:
crates/runtime/src/package.rs:
crates/runtime/src/telemetry.rs:
crates/runtime/src/value.rs:
crates/runtime/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
