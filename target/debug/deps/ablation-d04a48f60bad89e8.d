/root/repo/target/debug/deps/ablation-d04a48f60bad89e8.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-d04a48f60bad89e8.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
