/root/repo/target/debug/deps/fleet_determinism-5e2459bd55932c0c.d: crates/bench/tests/fleet_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_determinism-5e2459bd55932c0c.rmeta: crates/bench/tests/fleet_determinism.rs Cargo.toml

crates/bench/tests/fleet_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
