/root/repo/target/debug/deps/bombdroid_analysis-8de6b7d3cf29568b.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

/root/repo/target/debug/deps/libbombdroid_analysis-8de6b7d3cf29568b.rlib: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

/root/repo/target/debug/deps/libbombdroid_analysis-8de6b7d3cf29568b.rmeta: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/entropy.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/qc.rs:
crates/analysis/src/slice.rs:
