/root/repo/target/debug/deps/bombdroid-903ce0091bd11a60.d: src/lib.rs

/root/repo/target/debug/deps/libbombdroid-903ce0091bd11a60.rlib: src/lib.rs

/root/repo/target/debug/deps/libbombdroid-903ce0091bd11a60.rmeta: src/lib.rs

src/lib.rs:
