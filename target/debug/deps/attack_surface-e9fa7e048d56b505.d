/root/repo/target/debug/deps/attack_surface-e9fa7e048d56b505.d: tests/attack_surface.rs

/root/repo/target/debug/deps/attack_surface-e9fa7e048d56b505: tests/attack_surface.rs

tests/attack_surface.rs:
