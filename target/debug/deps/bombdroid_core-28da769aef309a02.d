/root/repo/target/debug/deps/bombdroid_core-28da769aef309a02.d: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_core-28da769aef309a02.rmeta: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bomb.rs:
crates/core/src/config.rs:
crates/core/src/fleet.rs:
crates/core/src/fragment.rs:
crates/core/src/inner.rs:
crates/core/src/naive.rs:
crates/core/src/payload.rs:
crates/core/src/pipeline.rs:
crates/core/src/profiling.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
crates/core/src/sites.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
