/root/repo/target/debug/deps/property-ff4d159962a5074e.d: tests/property.rs

/root/repo/target/debug/deps/property-ff4d159962a5074e: tests/property.rs

tests/property.rs:
