/root/repo/target/debug/deps/crypto-be682093af65f210.d: crates/bench/benches/crypto.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto-be682093af65f210.rmeta: crates/bench/benches/crypto.rs Cargo.toml

crates/bench/benches/crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
