/root/repo/target/debug/deps/bombdroid_corpus-12ed7c813f751c7d.d: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_corpus-12ed7c813f751c7d.rmeta: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/flagship.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profiles.rs:
crates/corpus/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
