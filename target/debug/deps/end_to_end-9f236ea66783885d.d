/root/repo/target/debug/deps/end_to_end-9f236ea66783885d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9f236ea66783885d: tests/end_to_end.rs

tests/end_to_end.rs:
