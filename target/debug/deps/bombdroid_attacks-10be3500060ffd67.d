/root/repo/target/debug/deps/bombdroid_attacks-10be3500060ffd67.d: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs

/root/repo/target/debug/deps/libbombdroid_attacks-10be3500060ffd67.rlib: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs

/root/repo/target/debug/deps/libbombdroid_attacks-10be3500060ffd67.rmeta: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs

crates/attacks/src/lib.rs:
crates/attacks/src/analyst.rs:
crates/attacks/src/brute.rs:
crates/attacks/src/deletion.rs:
crates/attacks/src/forced.rs:
crates/attacks/src/fuzz.rs:
crates/attacks/src/instrument.rs:
crates/attacks/src/resilience.rs:
crates/attacks/src/slicing.rs:
crates/attacks/src/symbolic.rs:
crates/attacks/src/textsearch.rs:
