/root/repo/target/debug/deps/bombdroid-641b7c4abed37830.d: src/lib.rs

/root/repo/target/debug/deps/bombdroid-641b7c4abed37830: src/lib.rs

src/lib.rs:
