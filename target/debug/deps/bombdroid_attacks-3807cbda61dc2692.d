/root/repo/target/debug/deps/bombdroid_attacks-3807cbda61dc2692.d: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_attacks-3807cbda61dc2692.rmeta: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs Cargo.toml

crates/attacks/src/lib.rs:
crates/attacks/src/analyst.rs:
crates/attacks/src/brute.rs:
crates/attacks/src/deletion.rs:
crates/attacks/src/forced.rs:
crates/attacks/src/fuzz.rs:
crates/attacks/src/instrument.rs:
crates/attacks/src/resilience.rs:
crates/attacks/src/slicing.rs:
crates/attacks/src/symbolic.rs:
crates/attacks/src/textsearch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
