/root/repo/target/debug/deps/end_to_end-1f37f48e5ec38996.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1f37f48e5ec38996: tests/end_to_end.rs

tests/end_to_end.rs:
