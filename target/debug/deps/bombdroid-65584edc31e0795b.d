/root/repo/target/debug/deps/bombdroid-65584edc31e0795b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid-65584edc31e0795b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
