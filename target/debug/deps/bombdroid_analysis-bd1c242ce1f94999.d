/root/repo/target/debug/deps/bombdroid_analysis-bd1c242ce1f94999.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_analysis-bd1c242ce1f94999.rmeta: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/entropy.rs crates/analysis/src/loops.rs crates/analysis/src/qc.rs crates/analysis/src/slice.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/entropy.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/qc.rs:
crates/analysis/src/slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
