/root/repo/target/debug/deps/bombdroid-46316d0a8f757503.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid-46316d0a8f757503.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
