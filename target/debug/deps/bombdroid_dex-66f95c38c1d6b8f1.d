/root/repo/target/debug/deps/bombdroid_dex-66f95c38c1d6b8f1.d: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libbombdroid_dex-66f95c38c1d6b8f1.rmeta: crates/dex/src/lib.rs crates/dex/src/asm.rs crates/dex/src/builder.rs crates/dex/src/class.rs crates/dex/src/dex_file.rs crates/dex/src/instr.rs crates/dex/src/validate.rs crates/dex/src/value.rs crates/dex/src/wire.rs Cargo.toml

crates/dex/src/lib.rs:
crates/dex/src/asm.rs:
crates/dex/src/builder.rs:
crates/dex/src/class.rs:
crates/dex/src/dex_file.rs:
crates/dex/src/instr.rs:
crates/dex/src/validate.rs:
crates/dex/src/value.rs:
crates/dex/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
