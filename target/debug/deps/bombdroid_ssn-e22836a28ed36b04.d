/root/repo/target/debug/deps/bombdroid_ssn-e22836a28ed36b04.d: crates/ssn/src/lib.rs

/root/repo/target/debug/deps/bombdroid_ssn-e22836a28ed36b04: crates/ssn/src/lib.rs

crates/ssn/src/lib.rs:
