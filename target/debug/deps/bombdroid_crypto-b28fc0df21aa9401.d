/root/repo/target/debug/deps/bombdroid_crypto-b28fc0df21aa9401.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libbombdroid_crypto-b28fc0df21aa9401.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libbombdroid_crypto-b28fc0df21aa9401.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/blob.rs crates/crypto/src/hex.rs crates/crypto/src/kdf.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/blob.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/kdf.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
