/root/repo/target/debug/deps/vm-30f1955e4af322f0.d: crates/bench/benches/vm.rs Cargo.toml

/root/repo/target/debug/deps/libvm-30f1955e4af322f0.rmeta: crates/bench/benches/vm.rs Cargo.toml

crates/bench/benches/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
