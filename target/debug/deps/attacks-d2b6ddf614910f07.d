/root/repo/target/debug/deps/attacks-d2b6ddf614910f07.d: crates/bench/benches/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-d2b6ddf614910f07.rmeta: crates/bench/benches/attacks.rs Cargo.toml

crates/bench/benches/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
