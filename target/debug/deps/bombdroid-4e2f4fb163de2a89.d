/root/repo/target/debug/deps/bombdroid-4e2f4fb163de2a89.d: src/lib.rs

/root/repo/target/debug/deps/libbombdroid-4e2f4fb163de2a89.rlib: src/lib.rs

/root/repo/target/debug/deps/libbombdroid-4e2f4fb163de2a89.rmeta: src/lib.rs

src/lib.rs:
