/root/repo/target/debug/deps/bombdroid_core-d2857864d3708332.d: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs

/root/repo/target/debug/deps/bombdroid_core-d2857864d3708332: crates/core/src/lib.rs crates/core/src/bomb.rs crates/core/src/config.rs crates/core/src/fleet.rs crates/core/src/fragment.rs crates/core/src/inner.rs crates/core/src/naive.rs crates/core/src/payload.rs crates/core/src/pipeline.rs crates/core/src/profiling.rs crates/core/src/report.rs crates/core/src/rewrite.rs crates/core/src/sites.rs

crates/core/src/lib.rs:
crates/core/src/bomb.rs:
crates/core/src/config.rs:
crates/core/src/fleet.rs:
crates/core/src/fragment.rs:
crates/core/src/inner.rs:
crates/core/src/naive.rs:
crates/core/src/payload.rs:
crates/core/src/pipeline.rs:
crates/core/src/profiling.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
crates/core/src/sites.rs:
