/root/repo/target/debug/deps/bombdroid_bench-20bdf91ea47add12.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/analysts.rs crates/bench/src/experiments/brute.rs crates/bench/src/experiments/codesize.rs crates/bench/src/experiments/falsepos.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/harness.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/print.rs

/root/repo/target/debug/deps/bombdroid_bench-20bdf91ea47add12: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/analysts.rs crates/bench/src/experiments/brute.rs crates/bench/src/experiments/codesize.rs crates/bench/src/experiments/falsepos.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/harness.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/print.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/analysts.rs:
crates/bench/src/experiments/brute.rs:
crates/bench/src/experiments/codesize.rs:
crates/bench/src/experiments/falsepos.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/harness.rs:
crates/bench/src/experiments/resilience.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table5.rs:
crates/bench/src/print.rs:
