/root/repo/target/debug/deps/bombdroid_runtime-ad7aee6feeeaeb3a.d: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

/root/repo/target/debug/deps/bombdroid_runtime-ad7aee6feeeaeb3a: crates/runtime/src/lib.rs crates/runtime/src/driver.rs crates/runtime/src/env.rs crates/runtime/src/package.rs crates/runtime/src/telemetry.rs crates/runtime/src/value.rs crates/runtime/src/vm.rs

crates/runtime/src/lib.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/env.rs:
crates/runtime/src/package.rs:
crates/runtime/src/telemetry.rs:
crates/runtime/src/value.rs:
crates/runtime/src/vm.rs:
