/root/repo/target/debug/deps/bombdroid_attacks-1ac1aea68b098ae9.d: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs

/root/repo/target/debug/deps/bombdroid_attacks-1ac1aea68b098ae9: crates/attacks/src/lib.rs crates/attacks/src/analyst.rs crates/attacks/src/brute.rs crates/attacks/src/deletion.rs crates/attacks/src/forced.rs crates/attacks/src/fuzz.rs crates/attacks/src/instrument.rs crates/attacks/src/resilience.rs crates/attacks/src/slicing.rs crates/attacks/src/symbolic.rs crates/attacks/src/textsearch.rs

crates/attacks/src/lib.rs:
crates/attacks/src/analyst.rs:
crates/attacks/src/brute.rs:
crates/attacks/src/deletion.rs:
crates/attacks/src/forced.rs:
crates/attacks/src/fuzz.rs:
crates/attacks/src/instrument.rs:
crates/attacks/src/resilience.rs:
crates/attacks/src/slicing.rs:
crates/attacks/src/symbolic.rs:
crates/attacks/src/textsearch.rs:
