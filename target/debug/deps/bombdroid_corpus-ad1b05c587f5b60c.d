/root/repo/target/debug/deps/bombdroid_corpus-ad1b05c587f5b60c.d: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/libbombdroid_corpus-ad1b05c587f5b60c.rlib: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/libbombdroid_corpus-ad1b05c587f5b60c.rmeta: crates/corpus/src/lib.rs crates/corpus/src/flagship.rs crates/corpus/src/gen.rs crates/corpus/src/profiles.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/flagship.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profiles.rs:
crates/corpus/src/stats.rs:
