/root/repo/target/debug/deps/decentralized_detection-fdd282d13f88e9da.d: tests/decentralized_detection.rs

/root/repo/target/debug/deps/decentralized_detection-fdd282d13f88e9da: tests/decentralized_detection.rs

tests/decentralized_detection.rs:
