/root/repo/target/debug/deps/property-a51e2e22999ccb37.d: tests/property.rs Cargo.toml

/root/repo/target/debug/deps/libproperty-a51e2e22999ccb37.rmeta: tests/property.rs Cargo.toml

tests/property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
