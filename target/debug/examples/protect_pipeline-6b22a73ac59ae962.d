/root/repo/target/debug/examples/protect_pipeline-6b22a73ac59ae962.d: examples/protect_pipeline.rs

/root/repo/target/debug/examples/protect_pipeline-6b22a73ac59ae962: examples/protect_pipeline.rs

examples/protect_pipeline.rs:
