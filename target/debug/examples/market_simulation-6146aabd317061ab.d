/root/repo/target/debug/examples/market_simulation-6146aabd317061ab.d: examples/market_simulation.rs

/root/repo/target/debug/examples/market_simulation-6146aabd317061ab: examples/market_simulation.rs

examples/market_simulation.rs:
