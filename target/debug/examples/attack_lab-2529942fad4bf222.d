/root/repo/target/debug/examples/attack_lab-2529942fad4bf222.d: examples/attack_lab.rs Cargo.toml

/root/repo/target/debug/examples/libattack_lab-2529942fad4bf222.rmeta: examples/attack_lab.rs Cargo.toml

examples/attack_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
