/root/repo/target/debug/examples/market_simulation-99f2baabe3bb1e73.d: examples/market_simulation.rs

/root/repo/target/debug/examples/market_simulation-99f2baabe3bb1e73: examples/market_simulation.rs

examples/market_simulation.rs:
