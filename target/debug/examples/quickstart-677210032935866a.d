/root/repo/target/debug/examples/quickstart-677210032935866a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-677210032935866a: examples/quickstart.rs

examples/quickstart.rs:
