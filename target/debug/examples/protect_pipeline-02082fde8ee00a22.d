/root/repo/target/debug/examples/protect_pipeline-02082fde8ee00a22.d: examples/protect_pipeline.rs

/root/repo/target/debug/examples/protect_pipeline-02082fde8ee00a22: examples/protect_pipeline.rs

examples/protect_pipeline.rs:
