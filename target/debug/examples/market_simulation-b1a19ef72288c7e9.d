/root/repo/target/debug/examples/market_simulation-b1a19ef72288c7e9.d: examples/market_simulation.rs Cargo.toml

/root/repo/target/debug/examples/libmarket_simulation-b1a19ef72288c7e9.rmeta: examples/market_simulation.rs Cargo.toml

examples/market_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
