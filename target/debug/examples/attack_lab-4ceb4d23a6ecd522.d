/root/repo/target/debug/examples/attack_lab-4ceb4d23a6ecd522.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-4ceb4d23a6ecd522: examples/attack_lab.rs

examples/attack_lab.rs:
