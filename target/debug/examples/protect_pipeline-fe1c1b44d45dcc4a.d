/root/repo/target/debug/examples/protect_pipeline-fe1c1b44d45dcc4a.d: examples/protect_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libprotect_pipeline-fe1c1b44d45dcc4a.rmeta: examples/protect_pipeline.rs Cargo.toml

examples/protect_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
