/root/repo/target/debug/examples/quickstart-206927b35eb3f27b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-206927b35eb3f27b: examples/quickstart.rs

examples/quickstart.rs:
