/root/repo/target/debug/examples/attack_lab-7728fa5cd7b4fc0a.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-7728fa5cd7b4fc0a: examples/attack_lab.rs

examples/attack_lab.rs:
